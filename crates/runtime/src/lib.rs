//! # seg6-runtime — the multi-queue batched packet runtime
//!
//! The paper's End.BPF datapath scales the way every kernel datapath does:
//! the NIC spreads flows over hardware queues with RSS, each queue is
//! served by one CPU, programs run on every CPU concurrently, and per-CPU
//! maps plus per-CPU perf rings keep the hot path free of shared writable
//! state. This crate reproduces that architecture in user space:
//!
//! * packets are classified and hashed by [`netpkt::flow`] (Toeplitz RSS
//!   over the 5-tuple) and steered to one of N **worker shards**;
//! * every worker owns a full [`Seg6Datapath`] instance — its own program
//!   instances, its own FIB handle, its own `cpu_id` — so per-CPU maps and
//!   `BPF_F_CURRENT_CPU` perf output resolve to genuinely private slots;
//! * workers drain their queues in **batches** through
//!   [`Seg6Datapath::process_batch`], amortising classification;
//! * [`Runtime::run_once`] drives all shards on the calling thread (the
//!   deterministic mode benches and the simulator use);
//!   [`Runtime::run_threaded`] runs every shard on its own OS thread,
//!   spawned per call — the one-shot mode;
//! * [`WorkerPool`] is the **persistent** flavour: shard threads spawned
//!   once, fed over bounded channels, with backpressure accounting,
//!   per-batch perf-drain daemons and graceful shutdown. Steady-state
//!   traffic belongs there; [`thread_spawn_count`] lets tests prove the
//!   pool never spawns after construction.
//!
//! ```
//! use seg6_runtime::{Runtime, RuntimeConfig};
//! use seg6_core::{Nexthop, Seg6Datapath};
//! use netpkt::packet::build_ipv6_udp_packet;
//!
//! let mut runtime = Runtime::new(RuntimeConfig { workers: 4, ..Default::default() }, |cpu| {
//!     let mut dp = Seg6Datapath::new("fc00::1".parse().unwrap()).on_cpu(cpu);
//!     dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
//!     dp
//! });
//! for flow in 0..64u16 {
//!     let pkt = build_ipv6_udp_packet(
//!         "2001:db8::1".parse().unwrap(),
//!         "2001:db8::2".parse().unwrap(),
//!         1000 + flow,
//!         5001,
//!         &[0u8; 64],
//!         64,
//!     );
//!     runtime.enqueue(pkt);
//! }
//! let report = runtime.run_once(0);
//! assert_eq!(report.processed, 64);
//! assert_eq!(report.forwarded, 64);
//! ```

#![warn(missing_docs)]
// Unsafe is denied crate-wide and allowed in exactly two modules: the
// lock-free SPSC ring (`ring`), whose slot accesses cannot be expressed in
// safe Rust (its safety argument is documented there and hammered by the
// two-thread stress test, `tests/ring_stress.rs`), and the
// `sched_setaffinity(2)` FFI in `affinity`.
#![deny(unsafe_code)]

use netpkt::flow::{rss_hash_packet, rss_hash_packet_symmetric, steer};
use netpkt::PacketBuf;
use seg6_core::{Seg6Datapath, Skb, Verdict};
use std::sync::atomic::{AtomicU64, Ordering};

#[allow(unsafe_code)]
pub mod affinity;
pub mod pool;
#[allow(unsafe_code)]
pub mod ring;
pub mod telemetry;

pub use affinity::PinPolicy;
pub use pool::{
    work_cost, BatchDrain, DrainReport, Ingress, PoolConfig, PoolReport, ShardFlush, ShardSetup, ShardStats,
    Tenant, TenantId, TenantQos, TenantSpec, WorkerPool, COST_BASE, COST_BPF, COST_SEG6LOCAL, COST_TRANSIT,
};
pub use telemetry::{PoolCounters, PoolSnapshot, ShardSnapshot, TenantCounters, TenantSnapshot};

/// Hard ceiling on the worker count, matching the CPU slots per-CPU maps
/// are provisioned for by default.
pub const MAX_WORKERS: u32 = ebpf_vm::DEFAULT_NUM_CPUS;

/// Every OS thread this crate has ever spawned, process-wide.
static THREAD_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Test hook: how many OS threads the runtime has spawned so far in this
/// process — [`Runtime::run_threaded`] adds one per shard on **every**
/// call, a [`WorkerPool`] adds one per shard at construction and then
/// never again. Benchmarks and the acceptance test read it around a
/// steady-state run to prove the pool amortises spawns.
pub fn thread_spawn_count() -> u64 {
    THREAD_SPAWNS.load(Ordering::Relaxed)
}

pub(crate) fn count_thread_spawn() {
    THREAD_SPAWNS.fetch_add(1, Ordering::Relaxed);
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of worker shards (receive queues). Clamped to
    /// `1..=`[`MAX_WORKERS`].
    pub workers: u32,
    /// Packets handed to [`Seg6Datapath::process_batch`] at a time.
    pub batch_size: usize,
    /// Steer with the symmetric flow hash, keeping both directions of a
    /// flow on one worker (needed by stateful bidirectional functions).
    pub symmetric_steering: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { workers: 1, batch_size: 32, symmetric_steering: false }
    }
}

/// Counters of one worker shard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Packets steered to this worker since creation.
    pub steered: u64,
    /// Packets processed.
    pub processed: u64,
    /// Packets that left with a forward verdict.
    pub forwarded: u64,
    /// Packets delivered locally.
    pub local_delivered: u64,
    /// Packets dropped (any reason).
    pub dropped: u64,
    /// Batches executed.
    pub batches: u64,
}

/// One worker shard: a CPU id, its queue, and its own datapath instance.
pub struct Worker {
    /// The shard's logical CPU id ( = its index).
    pub id: u32,
    /// The shard's private datapath (own program instances, `cpu_id` set).
    pub datapath: Seg6Datapath,
    /// Counters.
    pub stats: WorkerStats,
    queue: Vec<Skb>,
}

impl Worker {
    /// Packets currently waiting in this worker's queue.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queue in batches, recording verdict counts. The shard's
    /// whole run is independent of every other shard, which is what makes
    /// [`Runtime::run_threaded`] data-race-free by construction. Batches
    /// are processed in place over the queue buffer — no per-batch
    /// allocation or copying of packets.
    fn run(&mut self, batch_size: usize, now_ns: u64) -> WorkerStats {
        let before = self.stats;
        let mut queue = std::mem::take(&mut self.queue);
        for batch in queue.chunks_mut(batch_size.max(1)) {
            for verdict in self.datapath.process_batch(batch, now_ns) {
                self.stats.processed += 1;
                match verdict {
                    Verdict::Forward { .. } => self.stats.forwarded += 1,
                    Verdict::LocalDeliver => self.stats.local_delivered += 1,
                    Verdict::Drop(_) => self.stats.dropped += 1,
                }
            }
            self.stats.batches += 1;
        }
        // Hand the (drained) allocation back for the next run.
        queue.clear();
        self.queue = queue;
        delta(before, self.stats)
    }
}

pub(crate) fn delta(before: WorkerStats, after: WorkerStats) -> WorkerStats {
    WorkerStats {
        steered: after.steered - before.steered,
        processed: after.processed - before.processed,
        forwarded: after.forwarded - before.forwarded,
        local_delivered: after.local_delivered - before.local_delivered,
        dropped: after.dropped - before.dropped,
        batches: after.batches - before.batches,
    }
}

/// Aggregate result of one [`Runtime::run_once`] / [`Runtime::run_threaded`]
/// call.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Packets processed across all workers.
    pub processed: u64,
    /// Forward verdicts across all workers.
    pub forwarded: u64,
    /// Local deliveries across all workers.
    pub local_delivered: u64,
    /// Drops across all workers.
    pub dropped: u64,
    /// Per-worker processed counts, indexed by worker id.
    pub per_worker: Vec<u64>,
}

impl RunReport {
    pub(crate) fn from_deltas(deltas: &[WorkerStats]) -> Self {
        RunReport {
            processed: deltas.iter().map(|d| d.processed).sum(),
            forwarded: deltas.iter().map(|d| d.forwarded).sum(),
            local_delivered: deltas.iter().map(|d| d.local_delivered).sum(),
            dropped: deltas.iter().map(|d| d.dropped).sum(),
            per_worker: deltas.iter().map(|d| d.processed).collect(),
        }
    }
}

/// The multi-queue packet engine: N worker shards fed by RSS steering.
pub struct Runtime {
    config: RuntimeConfig,
    workers: Vec<Worker>,
}

impl Runtime {
    /// Creates a runtime whose shards are built by `builder`, called once
    /// per worker with the worker's CPU id. The builder constructs that
    /// shard's private [`Seg6Datapath`] — loading its own program
    /// instances, as one kernel would per CPU — and the runtime pins the
    /// instance to the shard's CPU id.
    pub fn new(config: RuntimeConfig, builder: impl FnMut(u32) -> Seg6Datapath) -> Self {
        let mut builder = builder;
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let config = RuntimeConfig { workers, ..config };
        Runtime {
            config,
            workers: (0..workers)
                .map(|id| {
                    let mut datapath = builder(id);
                    datapath.cpu_id = id;
                    Worker { id, datapath, stats: WorkerStats::default(), queue: Vec::new() }
                })
                .collect(),
        }
    }

    /// The runtime's configuration (with the worker count clamped).
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// The worker shards.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// One worker shard by id.
    pub fn worker(&self, id: u32) -> &Worker {
        &self.workers[id as usize]
    }

    /// The worker a packet steers to, without enqueueing it.
    pub fn steer_to(&self, packet: &[u8]) -> u32 {
        let hash = if self.config.symmetric_steering {
            rss_hash_packet_symmetric(packet)
        } else {
            rss_hash_packet(packet)
        };
        steer(hash, self.workers.len()) as u32
    }

    /// Steers one packet to its worker's queue.
    pub fn enqueue(&mut self, packet: PacketBuf) {
        let worker = self.steer_to(packet.data()) as usize;
        self.workers[worker].stats.steered += 1;
        self.workers[worker].queue.push(Skb::new(packet));
    }

    /// Steers a collection of packets.
    pub fn enqueue_all(&mut self, packets: impl IntoIterator<Item = PacketBuf>) {
        for packet in packets {
            self.enqueue(packet);
        }
    }

    /// Total packets waiting across all queues.
    pub fn backlog(&self) -> usize {
        self.workers.iter().map(Worker::backlog).sum()
    }

    /// Drains every worker queue on the calling thread, in worker order.
    /// Deterministic and allocation-light; the mode to use inside the
    /// discrete-event simulator and for single-thread baselines.
    pub fn run_once(&mut self, now_ns: u64) -> RunReport {
        let batch = self.config.batch_size;
        let deltas: Vec<WorkerStats> =
            self.workers.iter_mut().map(|worker| worker.run(batch, now_ns)).collect();
        RunReport::from_deltas(&deltas)
    }

    /// Drains every worker queue with one OS thread per shard, **spawned
    /// on every call** — the one-shot mode [`WorkerPool`] exists to
    /// replace for steady-state traffic (each spawn is recorded in
    /// [`thread_spawn_count`]). Shards share no mutable state (each owns
    /// its datapath, queue and counters; maps handed to several shards are
    /// either internally synchronised or per-CPU), so the threads never
    /// contend on the hot path. Shard results are joined and reported in
    /// shard index order, whatever order the threads finish in, so the
    /// report is byte-identical to [`Runtime::run_once`] over the same
    /// queues.
    pub fn run_threaded(&mut self, now_ns: u64) -> RunReport {
        let batch = self.config.batch_size;
        let deltas: Vec<WorkerStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .map(|worker| {
                    count_thread_spawn();
                    scope.spawn(move || worker.run(batch, now_ns))
                })
                .collect();
            // Joining in spawn order keeps `per_worker[i]` = shard i.
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });
        RunReport::from_deltas(&deltas)
    }
}

// A worker must be movable to its own thread: this fails to compile if any
// datapath component loses Send.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Worker>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf_vm::helpers::ids;
    use ebpf_vm::insn::{jmp, AccessSize};
    use ebpf_vm::maps::PerCpuArrayMap;
    use ebpf_vm::program::{load, retcode, ProgramType};
    use ebpf_vm::{MapHandle, ProgramBuilder};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::SegmentRoutingHeader;
    use seg6_core::{Nexthop, Seg6LocalAction};
    use std::collections::HashMap;
    use std::net::Ipv6Addr;
    use std::sync::Arc;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn forwarding_datapath(cpu: u32) -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        dp
    }

    fn flow_packet(flow: u32) -> PacketBuf {
        build_ipv6_udp_packet(
            addr(&format!("2001:db8::{:x}", flow + 1)),
            addr("2001:db8:f::1"),
            (1024 + flow % 40_000) as u16,
            5001,
            &[0u8; 32],
            64,
        )
    }

    #[test]
    fn worker_count_is_clamped() {
        let rt = Runtime::new(RuntimeConfig { workers: 0, ..Default::default() }, forwarding_datapath);
        assert_eq!(rt.workers().len(), 1);
        let rt = Runtime::new(RuntimeConfig { workers: 10_000, ..Default::default() }, forwarding_datapath);
        assert_eq!(rt.workers().len(), MAX_WORKERS as usize);
        // Every worker got its CPU id.
        for (i, w) in rt.workers().iter().enumerate() {
            assert_eq!(w.id as usize, i);
            assert_eq!(w.datapath.cpu_id as usize, i);
        }
    }

    #[test]
    fn steering_is_consistent_and_spread() {
        let mut rt = Runtime::new(RuntimeConfig { workers: 4, ..Default::default() }, forwarding_datapath);
        for flow in 0..256 {
            let pkt = flow_packet(flow);
            assert_eq!(rt.steer_to(pkt.data()), rt.steer_to(pkt.data()));
            rt.enqueue(pkt);
        }
        // All four shards got a share of 256 distinct flows.
        for worker in rt.workers() {
            assert!(worker.backlog() > 16, "imbalanced: {}", worker.backlog());
        }
        let report = rt.run_once(0);
        assert_eq!(report.processed, 256);
        assert_eq!(report.forwarded, 256);
        assert_eq!(report.per_worker.iter().sum::<u64>(), 256);
    }

    #[test]
    fn threaded_and_single_thread_runs_agree() {
        let packets: Vec<PacketBuf> = (0..512).map(flow_packet).collect();

        let config = RuntimeConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut once = Runtime::new(config, forwarding_datapath);
        once.enqueue_all(packets.iter().cloned());
        let report_once = once.run_once(0);

        let mut threaded = Runtime::new(config, forwarding_datapath);
        threaded.enqueue_all(packets);
        let report_threaded = threaded.run_threaded(0);

        assert_eq!(report_once, report_threaded);
        assert_eq!(report_once.processed, 512);
        assert_eq!(report_once.dropped, 0);
    }

    #[test]
    fn symmetric_steering_joins_both_directions() {
        let config = RuntimeConfig { workers: 8, symmetric_steering: true, ..Default::default() };
        let rt = Runtime::new(config, forwarding_datapath);
        for flow in 0..64u16 {
            let fwd = build_ipv6_udp_packet(
                addr("2001:db8::1"),
                addr("2001:db8::2"),
                1000 + flow,
                443,
                &[0; 8],
                64,
            );
            let rev = build_ipv6_udp_packet(
                addr("2001:db8::2"),
                addr("2001:db8::1"),
                443,
                1000 + flow,
                &[0; 8],
                64,
            );
            assert_eq!(rt.steer_to(fwd.data()), rt.steer_to(rev.data()));
        }
    }

    /// An `End.BPF` program that counts invocations in entry 0 of a
    /// per-CPU array attached as fd 1, then forwards.
    fn counting_program() -> ebpf_vm::Program {
        let mut b = ProgramBuilder::new();
        b.store_imm(AccessSize::Word, 10, -4, 0);
        b.load_map_fd(1, 1);
        b.mov_reg(2, 10);
        b.add_imm(2, -4);
        b.call(ids::MAP_LOOKUP_ELEM);
        b.jmp_imm(jmp::JEQ, 0, 0, "out");
        b.load_mem(AccessSize::Double, 1, 0, 0);
        b.add_imm(1, 1);
        b.store_mem(AccessSize::Double, 0, 1, 0);
        b.label("out");
        b.ret(retcode::BPF_OK as i32);
        b.build_program("count", ProgramType::LwtSeg6Local).expect("static program")
    }

    /// The acceptance-criteria test: N workers share one per-CPU map; after
    /// a threaded run, every worker's slot holds exactly the packets that
    /// worker processed — the slots are disjoint, with no lost or
    /// double-counted updates.
    #[test]
    fn per_worker_map_state_is_disjoint() {
        const WORKERS: u32 = 4;
        let sid = addr("fc00::e1");
        let counter: Arc<PerCpuArrayMap> = PerCpuArrayMap::new(8, 1, WORKERS);
        let shared: MapHandle = counter.clone();

        let config = RuntimeConfig { workers: WORKERS, batch_size: 8, ..Default::default() };
        let mut rt = Runtime::new(config, |cpu| {
            let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
            dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(1)]);
            // Each worker loads its own program instance against the shared
            // per-CPU map, as each kernel CPU would.
            let mut maps: HashMap<u32, MapHandle> = HashMap::new();
            maps.insert(1, Arc::clone(&shared));
            let prog = load(counting_program(), &maps, &dp.helpers).expect("verified program");
            dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), Seg6LocalAction::EndBpf { prog });
            dp
        });

        // 400 packets over many flows; vary the source port so flows spread.
        for flow in 0..400u32 {
            let srh = SegmentRoutingHeader::from_path(proto::UDP, &[sid, addr("fc00::99")]);
            let pkt = build_srv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                &srh,
                (1000 + flow) as u16,
                5001,
                &[0u8; 16],
                64,
            );
            rt.enqueue(pkt);
        }
        let steered: Vec<u64> = rt.workers().iter().map(|w| w.stats.steered).collect();
        let report = rt.run_threaded(0);
        assert_eq!(report.processed, 400);
        assert_eq!(report.forwarded, 400);

        // Each worker's per-CPU slot counted exactly its own packets.
        let key = 0u32.to_ne_bytes();
        let mut total = 0;
        for cpu in 0..WORKERS {
            let slot = counter.lookup_cpu(&key, cpu).unwrap();
            let count = u64::from_le_bytes(slot.try_into().unwrap());
            assert_eq!(count, steered[cpu as usize], "worker {cpu} slot mismatch");
            assert!(count > 0, "worker {cpu} processed nothing — steering collapsed");
            total += count;
        }
        assert_eq!(total, 400);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        for batch_size in [1, 7, 32, 1024] {
            let config = RuntimeConfig { workers: 2, batch_size, ..Default::default() };
            let mut rt = Runtime::new(config, forwarding_datapath);
            rt.enqueue_all((0..100).map(flow_packet));
            let report = rt.run_once(0);
            assert_eq!(report.processed, 100, "batch_size {batch_size}");
            assert_eq!(report.forwarded, 100, "batch_size {batch_size}");
        }
    }

    #[test]
    fn run_threaded_reports_shards_in_index_order() {
        // Regression: whatever order shard threads finish in, the report
        // must list per-worker results by shard index, byte-identical to
        // the single-threaded deterministic mode.
        let packets: Vec<PacketBuf> = (0..512).map(flow_packet).collect();
        let config = RuntimeConfig { workers: 8, batch_size: 8, ..Default::default() };
        let mut once = Runtime::new(config, forwarding_datapath);
        once.enqueue_all(packets.iter().cloned());
        let per_worker_expected: Vec<u64> = once.workers().iter().map(|w| w.backlog() as u64).collect();
        let report_once = once.run_once(0);
        assert_eq!(report_once.per_worker, per_worker_expected);

        for _ in 0..3 {
            let mut threaded = Runtime::new(config, forwarding_datapath);
            threaded.enqueue_all(packets.iter().cloned());
            assert_eq!(threaded.run_threaded(0), report_once);
        }
    }
}
