//! The persistent worker pool: long-lived shard threads fed over
//! lock-free SPSC descriptor rings.
//!
//! [`Runtime::run_threaded`](crate::Runtime::run_threaded) pays one OS
//! thread spawn per shard on *every* call — fine for a one-shot benchmark,
//! fatal for a steady-state datapath. Kernel datapaths (and the paper's
//! End.BPF deployment) instead keep one long-lived worker per receive
//! queue: the NIC steers flows to queues with RSS, each queue's CPU runs
//! forever, and user space only observes counters. This module reproduces
//! that lifecycle, with a DPDK-style descriptor plane underneath:
//!
//! * [`WorkerPool::new`] spawns N shard threads **once**; each thread owns
//!   its [`Seg6Datapath`] (its program instances, its `cpu_id`) for the
//!   pool's whole life. The crate-level
//!   [`thread_spawn_count`](crate::thread_spawn_count) hook lets tests
//!   assert that the steady state spawns nothing.
//! * The dispatcher steers packets by RSS flow hash into per-shard
//!   **lock-free SPSC rings** ([`crate::ring`]) — no per-descriptor
//!   rendezvous with shared channel state, no blocking paths, wait-free
//!   on both sides. Batch ingestion APIs ([`WorkerPool::enqueue_all`],
//!   [`WorkerPool::enqueue_bytes_all`]) stage descriptors per shard and
//!   publish each shard's burst with a *single* atomic release, so a
//!   32-packet batch costs one ring publish instead of 32 channel sends.
//!   A full ring rejects the packet and counts it
//!   ([`ShardStats::rejected`]) — backpressure behaves like a NIC dropping
//!   on a full RX ring, it never blocks the dispatcher.
//!   [`PoolConfig::queue_depth`] rounds **up** to the next power of two
//!   ([`WorkerPool::queue_capacity`]) and the boundary is exact: exactly
//!   `queue_capacity` packets fit an idle shard's ring, the next is
//!   rejected.
//! * Packet storage is **recycled**: each worker returns drained
//!   [`PacketBuf`]s through a per-shard free-ring; the dispatcher drains
//!   free-rings into a [`BufPool`] arena and refills it into the next
//!   packets ([`WorkerPool::enqueue_bytes_at`] /
//!   [`WorkerPool::enqueue_bytes_all`] copy external frames into recycled
//!   storage). Steady-state ingestion therefore performs **zero heap
//!   allocations end-to-end** — dispatch → ring → worker → free-ring →
//!   dispatch — proven by the `alloc-counter` gate
//!   (`tests/pool_zero_alloc.rs`).
//! * Control traffic (flush barriers, shutdown) moves on a **sideband
//!   channel** checked between bursts, so the descriptor plane stays pure
//!   data. Idle workers **park** (and a publish to a sleeping shard's ring
//!   unparks it), so an idle pool consumes no CPU — there is no busy
//!   polling.
//! * Workers accumulate descriptors into batches of
//!   [`PoolConfig::batch_size`] and run them through
//!   [`Seg6Datapath::process_batch_verdicts`]; when a ring goes idle the
//!   partial batch is processed immediately (batching amortises bursts, it
//!   never delays a lull's packets). After every batch the shard's
//!   optional **drain daemon** runs ([`BatchDrain`]) — the hook per-CPU
//!   perf-ring consumers (`DelayCollector` and friends) attach to.
//! * Live counters: every shard mirrors its enqueue/reject/verdict counts
//!   into relaxed atomics ([`PoolCounters`], via
//!   [`WorkerPool::counters`]), readable at any time without a flush
//!   barrier.
//! * [`WorkerPool::flush`] is a barrier: every shard finishes what it was
//!   handed before the barrier message and reports. Results come back **in
//!   shard index order**, so a flush is as deterministic as
//!   [`Runtime::run_once`](crate::Runtime::run_once) modulo per-shard
//!   interleaving — and verdict-identical to it for the same packets.
//! * Dropping or [`WorkerPool::shutdown`]ting the pool delivers a shutdown
//!   message, lets every worker finish its backlog, runs the final drain,
//!   and joins the threads. No packet or perf event is stranded.

use crate::ring::{self, Consumer, Producer};
use crate::telemetry::PoolCounters;
use crate::{count_thread_spawn, RunReport, WorkerStats, MAX_WORKERS};
use netpkt::flow::{rss_hash_packet, rss_hash_packet_symmetric, steer};
use netpkt::{BufPool, PacketBuf};
use seg6_core::{BatchVerdict, Seg6Datapath, Skb};
use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A per-shard drain daemon: called on the worker thread after every
/// processed batch (and one final time at shutdown) with the shard's CPU
/// id. The canonical implementation drains the shard's per-CPU perf ring
/// into a collector — see `srv6_nf::daemons::DelayCollector::shard_drain`.
pub type BatchDrain = Box<dyn FnMut(u32) + Send>;

/// What one worker shard is built from: its private datapath and an
/// optional per-batch drain daemon.
pub struct ShardSetup {
    /// The shard's datapath (the pool pins it to the shard's CPU id).
    pub datapath: Seg6Datapath,
    /// Drain daemon run after every batch on this shard, if any.
    pub drain: Option<BatchDrain>,
}

impl ShardSetup {
    /// A shard with a datapath and no drain daemon.
    pub fn new(datapath: Seg6Datapath) -> Self {
        ShardSetup { datapath, drain: None }
    }

    /// Attaches a per-batch drain daemon (builder form).
    pub fn with_drain(mut self, drain: BatchDrain) -> Self {
        self.drain = Some(drain);
        self
    }
}

impl From<Seg6Datapath> for ShardSetup {
    fn from(datapath: Seg6Datapath) -> Self {
        ShardSetup::new(datapath)
    }
}

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker shards (receive queues). Clamped to
    /// `1..=`[`MAX_WORKERS`].
    pub workers: u32,
    /// Packets a worker accumulates before running
    /// [`Seg6Datapath::process_batch_verdicts`]. Also the dispatcher's
    /// staging burst: batch ingestion publishes a shard's ring once per
    /// this many staged packets. A flush or shutdown message always
    /// processes the partial batch first.
    pub batch_size: usize,
    /// Capacity of each shard's descriptor ring, in packets, **rounded up
    /// to the next power of two** (see [`WorkerPool::queue_capacity`] for
    /// the effective value). An enqueue onto a full ring is rejected and
    /// counted — the pool's backpressure signal.
    pub queue_depth: usize,
    /// Steer with the symmetric flow hash, keeping both directions of a
    /// flow on one worker.
    pub symmetric_steering: bool,
    /// Retain each processed packet and its [`BatchVerdict`] so
    /// [`WorkerPool::flush`] can return them. Costs one buffered `Skb` per
    /// packet per flush window (those buffers are not recycled through the
    /// free-ring — hand them back with [`WorkerPool::recycle`] after
    /// reading them); leave off for counter-only workloads.
    pub collect_outputs: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 1,
            batch_size: 32,
            queue_depth: 1024,
            symmetric_steering: false,
            collect_outputs: false,
        }
    }
}

/// Counters of one pool shard, as visible to the dispatcher.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Packets accepted into the shard's descriptor ring.
    pub enqueued: u64,
    /// Packets rejected because the ring was full (backpressure).
    pub rejected: u64,
}

/// What one shard reports at a flush barrier: its counter deltas since the
/// previous flush, plus the processed packets when
/// [`PoolConfig::collect_outputs`] is on.
pub struct ShardFlush {
    /// Verdict/batch counter deltas since the last flush.
    pub stats: WorkerStats,
    /// The packets processed since the last flush, with their verdicts, in
    /// processing order. Empty unless [`PoolConfig::collect_outputs`].
    pub outputs: Vec<(Skb, BatchVerdict)>,
}

/// Aggregate result of one [`WorkerPool::flush`] barrier.
pub struct PoolReport {
    /// Aggregated verdict counters since the previous flush, with
    /// `per_worker` in shard index order.
    pub run: RunReport,
    /// Per-shard outputs, indexed by shard id. Inner vectors are empty
    /// unless [`PoolConfig::collect_outputs`] is set.
    pub outputs: Vec<Vec<(Skb, BatchVerdict)>>,
}

/// Sideband control messages, delivered outside the descriptor ring and
/// checked by the worker between bursts.
enum Ctrl {
    /// Barrier: consume the descriptor ring dry, process everything, and
    /// report. Everything published before this message was sent is
    /// covered (the dispatcher publishes before it signals).
    Flush(Sender<ShardFlush>),
    /// Finish the backlog, run the final drain, exit.
    Shutdown,
}

/// Dispatcher-side handle of one shard: the descriptor-ring producer, the
/// free-ring consumer, the staging buffer, and the wakeup state.
struct ShardTx {
    /// Descriptor ring into the worker.
    ring: Producer<Skb>,
    /// Free-ring out of the worker: drained packet buffers coming back.
    freelist: Consumer<PacketBuf>,
    /// Sideband control channel.
    ctrl: Sender<Ctrl>,
    /// Staged descriptors not yet published (always empty between public
    /// API calls; batch ingestion fills it up to one burst).
    staging: Vec<Skb>,
    /// The worker thread, for unparking.
    thread: std::thread::Thread,
    /// Set by the worker just before it parks; cleared (by whoever acts
    /// on it) before unparking. The dispatcher's publish/control paths
    /// check it so a sleeping shard always wakes.
    sleeping: Arc<AtomicBool>,
}

impl ShardTx {
    /// Wakes the worker if it is parked (or about to park). Callers must
    /// make their work visible (ring publish, control send) *before*
    /// calling this; the SeqCst fence pairs with the worker's pre-park
    /// fence so either the worker sees the work, or this sees the worker
    /// sleeping.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping.swap(false, Ordering::SeqCst) {
            self.thread.unpark();
        }
    }
}

/// The persistent worker pool. See the [module docs](self) for the
/// lifecycle.
pub struct WorkerPool {
    config: PoolConfig,
    shards: Vec<ShardTx>,
    handles: Vec<JoinHandle<WorkerStats>>,
    stats: Vec<ShardStats>,
    counters: Arc<PoolCounters>,
    /// The dispatcher's recycling arena, refilled from the free-rings.
    bufs: BufPool,
    /// Reused scratch for draining free-rings.
    reclaim_scratch: Vec<PacketBuf>,
    queue_capacity: usize,
    /// Whether the arena has been provisioned for the byte-slice
    /// ingestion path (done once, on its first use).
    bytes_arena_ready: bool,
}

impl WorkerPool {
    /// Spawns the pool. `builder` runs once per shard, on the calling
    /// thread, with the shard's CPU id; the [`ShardSetup`] it returns (a
    /// bare [`Seg6Datapath`] converts) is moved onto that shard's thread,
    /// where it lives until shutdown. These construction-time spawns are
    /// the only ones the pool ever performs.
    pub fn new<S: Into<ShardSetup>>(config: PoolConfig, mut builder: impl FnMut(u32) -> S) -> Self {
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let config = PoolConfig { workers, ..config };
        let queue_capacity = config.queue_depth.max(1).next_power_of_two();
        let counters = Arc::new(PoolCounters::new(workers));
        let mut shards = Vec::with_capacity(workers as usize);
        let mut handles = Vec::with_capacity(workers as usize);
        for id in 0..workers {
            let setup: ShardSetup = builder(id).into();
            let mut datapath = setup.datapath;
            datapath.cpu_id = id;
            let (ring_tx, ring_rx) = ring::spsc_ring::<Skb>(queue_capacity);
            let (free_tx, free_rx) = ring::spsc_ring::<PacketBuf>(queue_capacity);
            let (ctrl_tx, ctrl_rx) = channel();
            let sleeping = Arc::new(AtomicBool::new(false));
            let state = ShardState {
                id,
                datapath,
                batch: Vec::with_capacity(config.batch_size.max(1)),
                stats: WorkerStats::default(),
                outputs: Vec::new(),
                verdicts: Vec::with_capacity(config.batch_size.max(1)),
                drain: setup.drain,
                free: free_tx,
                free_staging: Vec::with_capacity(config.batch_size.max(1)),
                counters: Arc::clone(&counters),
                sleeping: Arc::clone(&sleeping),
            };
            count_thread_spawn();
            let handle = std::thread::Builder::new()
                .name(format!("seg6-worker-{id}"))
                .spawn(move || worker_loop(config, state, ctrl_rx, ring_rx))
                .expect("spawn worker thread");
            shards.push(ShardTx {
                ring: ring_tx,
                freelist: free_rx,
                ctrl: ctrl_tx,
                staging: Vec::with_capacity(config.batch_size.max(1)),
                thread: handle.thread().clone(),
                sleeping,
            });
            handles.push(handle);
        }
        WorkerPool {
            config,
            shards,
            handles,
            stats: vec![ShardStats::default(); workers as usize],
            counters,
            bufs: BufPool::new(Self::in_flight_bound(&config, queue_capacity)),
            reclaim_scratch: Vec::new(),
            queue_capacity,
            bytes_arena_ready: false,
        }
    }

    /// Upper bound on packet buffers that can be in flight and
    /// *unreclaimable* at once (per shard: a full descriptor ring, the
    /// worker's current batch, the dispatcher's staging), plus one.
    /// Free-ring contents are excluded — the dispatcher drains those
    /// before minting. An arena provisioned to this bound can never run
    /// dry, whatever the worker scheduling.
    fn in_flight_bound(config: &PoolConfig, queue_capacity: usize) -> usize {
        config.workers as usize * (queue_capacity + 2 * config.batch_size.max(1)) + 1
    }

    /// Builds a pool whose shard `q` runs [`Seg6Datapath::fork_for_cpu`]
    /// of `datapath` — the shape simnet uses to put one configured node
    /// datapath on every receive queue.
    pub fn from_datapath(config: PoolConfig, datapath: &Seg6Datapath) -> Self {
        WorkerPool::new(config, |cpu| datapath.fork_for_cpu(cpu))
    }

    /// The pool's configuration (with the worker count clamped).
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Number of worker shards.
    pub fn workers(&self) -> u32 {
        self.config.workers
    }

    /// Effective per-shard descriptor-ring capacity:
    /// [`PoolConfig::queue_depth`] rounded up to the next power of two.
    /// Exactly this many packets fit an idle shard's ring before the first
    /// rejection.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Dispatcher-side counters, indexed by shard id.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Total packets rejected by full shard rings (backpressure).
    pub fn rejected(&self) -> u64 {
        self.stats.iter().map(|s| s.rejected).sum()
    }

    /// The pool's live counters: per-shard relaxed-atomic mirrors of the
    /// enqueue/reject/verdict counts, readable from any thread at any time
    /// **without** a flush barrier. The `Arc` stays valid after shutdown.
    pub fn counters(&self) -> Arc<PoolCounters> {
        Arc::clone(&self.counters)
    }

    /// The dispatcher's buffer-recycling arena (telemetry: allocation vs
    /// recycle-hit counts). Buffers flow back into it from the free-rings
    /// and from [`WorkerPool::recycle`].
    pub fn buf_pool(&self) -> &BufPool {
        &self.bufs
    }

    /// Hands a packet buffer back to the recycling arena — the way to
    /// return [`PoolConfig::collect_outputs`] buffers after reading them,
    /// closing the zero-allocation loop for output-collecting callers.
    pub fn recycle(&mut self, buf: PacketBuf) {
        self.bufs.put(buf);
    }

    /// The shard a packet steers to, without enqueueing it. Identical
    /// steering to [`Runtime`](crate::Runtime) and to simnet's per-node
    /// RSS model: the Toeplitz hash of the 5-tuple, modulo the shard
    /// count.
    pub fn steer_to(&self, packet: &[u8]) -> u32 {
        let hash = if self.config.symmetric_steering {
            rss_hash_packet_symmetric(packet)
        } else {
            rss_hash_packet(packet)
        };
        steer(hash, self.shards.len()) as u32
    }

    /// Steers `packet` to its shard and enqueues it with clock `now_ns`
    /// (the packet's RX timestamp, and the time its batch will be
    /// processed at). Returns `false` — counting the rejection — when the
    /// shard's ring is full.
    pub fn enqueue_at(&mut self, now_ns: u64, packet: PacketBuf) -> bool {
        let shard = self.steer_to(packet.data()) as usize;
        self.shards[shard].staging.push(Skb::received(packet, now_ns, 0));
        self.publish_shard(shard) == 1
    }

    /// [`WorkerPool::enqueue_at`] with clock 0 (benchmarks and tests that
    /// do not model time).
    pub fn enqueue(&mut self, packet: PacketBuf) -> bool {
        self.enqueue_at(0, packet)
    }

    /// Enqueues a collection of packets, returning how many were accepted.
    /// Descriptors are staged per shard and published in bursts of
    /// [`PoolConfig::batch_size`] — one atomic ring publish per burst, the
    /// amortisation the per-packet [`WorkerPool::enqueue`] cannot have.
    pub fn enqueue_all(&mut self, packets: impl IntoIterator<Item = PacketBuf>) -> usize {
        let burst = self.config.batch_size.max(1);
        let mut accepted = 0;
        for packet in packets {
            let shard = self.steer_to(packet.data()) as usize;
            self.shards[shard].staging.push(Skb::received(packet, 0, 0));
            if self.shards[shard].staging.len() >= burst {
                accepted += self.publish_shard(shard);
            }
        }
        accepted + self.publish_all()
    }

    /// First use of the byte-slice ingestion path: provision the arena
    /// with the pool's whole in-flight bound up front. From then on the
    /// bytes path can never run the arena dry — the buffers a lagging
    /// worker has not returned yet are covered by the bound — so a
    /// mint-free steady state is a deterministic property, not one that
    /// depends on worker scheduling.
    fn ensure_bytes_arena(&mut self) {
        if !self.bytes_arena_ready {
            self.bytes_arena_ready = true;
            self.bufs.prefill(Self::in_flight_bound(&self.config, self.queue_capacity));
        }
    }

    /// Copies one external frame into a **recycled** packet buffer (from
    /// the free-ring-fed arena, provisioned on first use to the pool's
    /// in-flight bound) and enqueues it with clock `now_ns`. This is the
    /// ingestion front-end for sources that own their bytes — pcap
    /// replay, the simulator — and the entry point of the
    /// zero-allocation loop.
    pub fn enqueue_bytes_at(&mut self, now_ns: u64, frame: &[u8]) -> bool {
        self.ensure_bytes_arena();
        if self.bufs.available() == 0 {
            self.reclaim();
        }
        let packet = self.bufs.take_filled(frame);
        self.enqueue_at(now_ns, packet)
    }

    /// Burst form of [`WorkerPool::enqueue_bytes_at`]: every frame is
    /// copied into recycled storage, staged per shard, and published in
    /// single-release bursts. Returns how many frames were accepted.
    pub fn enqueue_bytes_all<'a>(
        &mut self,
        now_ns: u64,
        frames: impl IntoIterator<Item = &'a [u8]>,
    ) -> usize {
        self.ensure_bytes_arena();
        // Start every burst round by collecting what the workers returned
        // since the last one, keeping the free-rings far from full (a full
        // free-ring makes the worker drop storage instead of recycling).
        self.reclaim();
        let burst = self.config.batch_size.max(1);
        let mut accepted = 0;
        for frame in frames {
            if self.bufs.available() == 0 {
                self.reclaim();
            }
            let packet = self.bufs.take_filled(frame);
            let shard = self.steer_to(packet.data()) as usize;
            self.shards[shard].staging.push(Skb::received(packet, now_ns, 0));
            if self.shards[shard].staging.len() >= burst {
                accepted += self.publish_shard(shard);
            }
        }
        accepted + self.publish_all()
    }

    /// Publishes shard `shard`'s staged descriptors with one atomic
    /// release, accounts acceptances and rejections exactly (rejected
    /// packets' buffers go back to the arena), and wakes the worker when
    /// anything was published. Returns the accepted count.
    fn publish_shard(&mut self, shard: usize) -> usize {
        let tx = &mut self.shards[shard];
        if tx.staging.is_empty() {
            return 0;
        }
        let accepted = tx.ring.enqueue_burst(&mut tx.staging);
        let rejected = tx.staging.len();
        for skb in tx.staging.drain(..) {
            self.bufs.put(skb.into_packet());
        }
        self.stats[shard].enqueued += accepted as u64;
        self.stats[shard].rejected += rejected as u64;
        self.counters.shard(shard as u32).add_ingress(accepted as u64, rejected as u64);
        if accepted > 0 {
            tx.wake();
        }
        accepted
    }

    /// Publishes every shard's remaining staged descriptors.
    fn publish_all(&mut self) -> usize {
        (0..self.shards.len()).map(|shard| self.publish_shard(shard)).sum()
    }

    /// Drains every shard's free-ring into the recycling arena.
    fn reclaim(&mut self) {
        for tx in &mut self.shards {
            while tx.freelist.dequeue_burst(&mut self.reclaim_scratch, 64) > 0 {
                for buf in self.reclaim_scratch.drain(..) {
                    self.bufs.put(buf);
                }
            }
        }
    }

    /// Barrier: waits until every shard has processed everything enqueued
    /// before this call, and returns the counter deltas (and outputs, when
    /// collected) since the previous flush — always in shard index order,
    /// regardless of which shard finished first.
    pub fn flush(&mut self) -> PoolReport {
        self.publish_all();
        // Hand every shard its barrier first, then collect in index order:
        // the shards drain concurrently, the ordering is imposed only on
        // the collection side.
        let replies: Vec<Receiver<ShardFlush>> = self
            .shards
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = channel();
                tx.ctrl.send(Ctrl::Flush(reply_tx)).expect("worker alive");
                tx.wake();
                reply_rx
            })
            .collect();
        let mut deltas = Vec::with_capacity(replies.len());
        let mut outputs = Vec::with_capacity(replies.len());
        for reply in replies {
            let flush = reply.recv().expect("worker answers the barrier");
            deltas.push(flush.stats);
            outputs.push(flush.outputs);
        }
        PoolReport { run: RunReport::from_deltas(&deltas), outputs }
    }

    /// Single-shard barrier: like [`WorkerPool::flush`], but only shard
    /// `shard` is flushed and reported — one reply channel, one
    /// round-trip. This is what per-event consumers (the simulator feeds
    /// one packet to one shard per arrival) use instead of paying a
    /// whole-pool barrier.
    pub fn flush_shard(&mut self, shard: u32) -> ShardFlush {
        self.publish_shard(shard as usize);
        let (reply_tx, reply_rx) = channel();
        let tx = &self.shards[shard as usize];
        tx.ctrl.send(Ctrl::Flush(reply_tx)).expect("worker alive");
        tx.wake();
        reply_rx.recv().expect("worker answers the barrier")
    }

    /// Graceful shutdown: every worker finishes its backlog, runs its
    /// final drain, and exits; the threads are joined. Returns each
    /// shard's lifetime totals, in shard index order. Dropping the pool
    /// does the same, minus the report.
    pub fn shutdown(mut self) -> Vec<WorkerStats> {
        self.stop();
        self.handles.drain(..).map(|h| h.join().expect("worker thread panicked")).collect()
    }

    fn stop(&mut self) {
        self.publish_all();
        for tx in self.shards.drain(..) {
            let _ = tx.ctrl.send(Ctrl::Shutdown);
            tx.wake();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How long a parked worker sleeps before re-checking its inputs on its
/// own. Wakeups are explicit (publish/control unpark the thread); the
/// timeout only bounds the damage if the dispatcher vanishes without a
/// shutdown message.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

/// The state one shard thread owns for its whole life. The batch, verdict
/// and output buffers are reused across batches: after the first batch
/// warms them up, the shard's steady state performs zero heap allocations
/// per packet (the `alloc-counter` test feature proves it).
struct ShardState {
    id: u32,
    datapath: Seg6Datapath,
    batch: Vec<Skb>,
    stats: WorkerStats,
    outputs: Vec<(Skb, BatchVerdict)>,
    verdicts: Vec<BatchVerdict>,
    drain: Option<BatchDrain>,
    /// Free-ring back to the dispatcher: drained packet buffers.
    free: Producer<PacketBuf>,
    /// Staging for the free-ring, so a whole batch's buffers are returned
    /// with one burst publish (reused across batches).
    free_staging: Vec<PacketBuf>,
    /// Live-counter mirrors, updated once per batch.
    counters: Arc<PoolCounters>,
    /// Park handshake; see [`ShardTx::sleeping`].
    sleeping: Arc<AtomicBool>,
}

/// One shard's thread body: burst-dequeue, batch, process, recycle,
/// drain, report. Control messages ride the sideband channel and are
/// checked between bursts; an idle shard parks.
fn worker_loop(
    config: PoolConfig,
    mut shard: ShardState,
    ctrl: Receiver<Ctrl>,
    mut ring: Consumer<Skb>,
) -> WorkerStats {
    let batch_size = config.batch_size.max(1);
    let mut reported = WorkerStats::default();
    let mut clock: u64 = 0;
    loop {
        // Sideband control, between bursts: the descriptor plane never
        // carries anything but packets.
        match ctrl.try_recv() {
            Ok(Ctrl::Flush(reply)) => {
                flush_barrier(&mut shard, &mut ring, &mut clock, &config, &mut reported, reply);
                continue;
            }
            Ok(Ctrl::Shutdown) | Err(TryRecvError::Disconnected) => {
                // Finish the backlog and the final drain, so no packet or
                // perf event is stranded. Disconnection without a shutdown
                // message means the dispatcher vanished mid-panic — same
                // exit path.
                drain_ring(&mut shard, &mut ring, &mut clock, &config);
                return shard.stats;
            }
            Err(TryRecvError::Empty) => {}
        }
        // One burst off the descriptor ring, up to the batch's remaining
        // room (a single acquire, however many descriptors are ready).
        let room = batch_size - shard.batch.len();
        let got = ring.dequeue_burst(&mut shard.batch, room);
        if got > 0 {
            note_arrivals(&mut shard, got, &mut clock);
            // NAPI-style: run a full batch, or — when the ring went idle —
            // the partial one. Batching amortises bursts, it never delays
            // a lull's packets until the next barrier.
            if shard.batch.len() >= batch_size || ring.is_empty() {
                run_batch(&mut shard, clock, &config);
            }
            continue;
        }
        if !shard.batch.is_empty() {
            run_batch(&mut shard, clock, &config);
            continue;
        }
        // Idle: park. The pre-park protocol pairs with `ShardTx::wake` —
        // set the flag, fence, then re-check both inputs; the dispatcher
        // publishes/sends first, fences, then checks the flag. Whatever
        // the interleaving, either this sees the work or the dispatcher
        // sees the flag and unparks.
        shard.sleeping.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if !ring.is_empty() {
            shard.sleeping.store(false, Ordering::SeqCst);
            continue;
        }
        match ctrl.try_recv() {
            Ok(Ctrl::Flush(reply)) => {
                shard.sleeping.store(false, Ordering::SeqCst);
                flush_barrier(&mut shard, &mut ring, &mut clock, &config, &mut reported, reply);
            }
            Ok(Ctrl::Shutdown) | Err(TryRecvError::Disconnected) => {
                shard.sleeping.store(false, Ordering::SeqCst);
                drain_ring(&mut shard, &mut ring, &mut clock, &config);
                return shard.stats;
            }
            Err(TryRecvError::Empty) => {
                std::thread::park_timeout(PARK_TIMEOUT);
                shard.sleeping.store(false, Ordering::SeqCst);
            }
        }
    }
}

/// Accounts `got` freshly dequeued descriptors (appended at the batch
/// tail) and advances the shard clock to the newest RX timestamp.
fn note_arrivals(shard: &mut ShardState, got: usize, clock: &mut u64) {
    shard.stats.steered += got as u64;
    let start = shard.batch.len() - got;
    for skb in &shard.batch[start..] {
        *clock = (*clock).max(skb.rx_timestamp_ns);
    }
}

/// Consumes the descriptor ring dry (everything published so far),
/// processing full batches as they fill and the final partial one.
fn drain_ring(shard: &mut ShardState, ring: &mut Consumer<Skb>, clock: &mut u64, config: &PoolConfig) {
    let batch_size = config.batch_size.max(1);
    loop {
        let room = batch_size - shard.batch.len();
        let got = ring.dequeue_burst(&mut shard.batch, room);
        if got == 0 {
            break;
        }
        note_arrivals(shard, got, clock);
        if shard.batch.len() >= batch_size {
            run_batch(shard, *clock, config);
        }
    }
    run_batch(shard, *clock, config);
}

/// Serves one flush barrier: drain everything published before it, then
/// report the deltas since the previous barrier.
fn flush_barrier(
    shard: &mut ShardState,
    ring: &mut Consumer<Skb>,
    clock: &mut u64,
    config: &PoolConfig,
    reported: &mut WorkerStats,
    reply: Sender<ShardFlush>,
) {
    drain_ring(shard, ring, clock, config);
    let delta = crate::delta(*reported, shard.stats);
    *reported = shard.stats;
    let _ = reply.send(ShardFlush { stats: delta, outputs: std::mem::take(&mut shard.outputs) });
}

/// Processes the accumulated batch (if any), recycles the drained packet
/// buffers through the free-ring, mirrors the deltas into the live
/// counters, and runs the drain daemon.
fn run_batch(shard: &mut ShardState, clock: u64, config: &PoolConfig) {
    if !shard.batch.is_empty() {
        let before = shard.stats;
        // The verdict buffer is shard-owned and reused: no allocation per
        // batch, no allocation per packet.
        shard.verdicts.clear();
        shard.datapath.process_batch_verdicts_into(&mut shard.batch, clock, &mut shard.verdicts);
        for bv in &shard.verdicts {
            shard.stats.processed += 1;
            match bv.verdict {
                seg6_core::Verdict::Forward { .. } => shard.stats.forwarded += 1,
                seg6_core::Verdict::LocalDeliver => shard.stats.local_delivered += 1,
                seg6_core::Verdict::Drop(_) => shard.stats.dropped += 1,
            }
        }
        shard.stats.batches += 1;
        let mut recycled = 0u64;
        if config.collect_outputs {
            shard.outputs.extend(shard.batch.drain(..).zip(shard.verdicts.drain(..)));
        } else {
            // Hand the whole batch's drained storage back to the
            // dispatcher with one burst publish — the return leg costs one
            // release store per batch, like the ingress leg. Whatever a
            // full free-ring (dispatcher not reclaiming) leaves behind is
            // dropped — recycling is an optimisation, never a blocking
            // edge.
            for skb in shard.batch.drain(..) {
                shard.free_staging.push(skb.into_packet());
            }
            recycled = shard.free.enqueue_burst(&mut shard.free_staging) as u64;
            shard.free_staging.clear();
        }
        shard.counters.shard(shard.id).add_batch(&crate::delta(before, shard.stats), recycled);
    }
    // The drain daemon runs batch-aware: after the batch's events are in
    // the ring, on the worker that produced them.
    if let Some(drain) = &mut shard.drain {
        drain(shard.datapath.cpu_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{thread_spawn_count, Runtime, RuntimeConfig};
    use ebpf_vm::helpers::ids;
    use ebpf_vm::insn::{jmp, AccessSize};
    use ebpf_vm::maps::{PerCpuArrayMap, PerfEventArray};
    use ebpf_vm::perf::PerfEvent;
    use ebpf_vm::program::{load, retcode, ProgramType};
    use ebpf_vm::{Map, MapHandle, ProgramBuilder};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::SegmentRoutingHeader;

    use seg6_core::{Nexthop, Seg6LocalAction, Verdict};
    use std::collections::HashMap;
    use std::net::Ipv6Addr;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn forwarding_datapath(cpu: u32) -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        dp
    }

    fn flow_packet(flow: u32) -> PacketBuf {
        build_ipv6_udp_packet(
            addr(&format!("2001:db8::{:x}", flow + 1)),
            addr("2001:db8:f::1"),
            (1024 + flow % 40_000) as u16,
            5001,
            &[0u8; 32],
            64,
        )
    }

    /// Satellite regression: the pool must agree with the deterministic
    /// single-thread mode — same verdicts, and per-shard results reported
    /// in shard index order no matter which shard finishes first.
    #[test]
    fn pool_flush_matches_run_once_in_shard_index_order() {
        let packets: Vec<PacketBuf> = (0..512).map(flow_packet).collect();

        let rt_config = RuntimeConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut once = Runtime::new(rt_config, forwarding_datapath);
        once.enqueue_all(packets.iter().cloned());
        let report_once = once.run_once(0);

        let config = PoolConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        assert_eq!(pool.enqueue_all(packets.iter().cloned()), 512);
        for _ in 0..5 {
            // Repeat to give out-of-order shard completions a chance to
            // show up; the report must stay identical every time.
            let report = pool.flush();
            assert_eq!(report.run, report_once);
            pool.enqueue_all(packets.iter().cloned());
        }
        pool.flush();
    }

    /// The acceptance-criteria test: a steady-state run through the
    /// persistent pool performs no thread spawns after construction.
    #[test]
    fn pool_spawns_no_threads_after_construction() {
        let config = PoolConfig { workers: 4, batch_size: 32, ..Default::default() };
        let before_construction = thread_spawn_count();
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let after_construction = thread_spawn_count();
        assert_eq!(after_construction - before_construction, 4);

        // The scaling workload: many enqueue/flush rounds.
        for _ in 0..10 {
            pool.enqueue_all((0..256).map(flow_packet));
            let report = pool.flush();
            assert_eq!(report.run.processed, 256);
        }
        assert_eq!(thread_spawn_count(), after_construction, "steady state must not spawn");
        pool.shutdown();
        assert_eq!(thread_spawn_count(), after_construction, "shutdown must not spawn");

        // The spawn-per-run mode the pool replaces *does* keep spawning.
        let rt_config = RuntimeConfig { workers: 4, batch_size: 32, ..Default::default() };
        let mut rt = Runtime::new(rt_config, forwarding_datapath);
        let before = thread_spawn_count();
        for _ in 0..3 {
            rt.enqueue_all((0..64).map(flow_packet));
            rt.run_threaded(0);
        }
        assert_eq!(thread_spawn_count() - before, 3 * 4);
    }

    /// Backpressure: a full shard ring rejects deterministically. The
    /// drain daemon doubles as a worker-stall handshake so the test
    /// controls exactly when the worker consumes its ring.
    #[test]
    fn full_shard_ring_rejects_and_counts() {
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
        let config = PoolConfig { workers: 1, batch_size: 1, queue_depth: 4, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let entered_tx = entered_tx.clone();
            let release_rx = Arc::clone(&release_rx);
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
            }))
        });

        // First packet: the worker takes it off the ring, processes it
        // (batch size 1) and blocks inside the drain.
        assert!(pool.enqueue(flow_packet(0)));
        entered_rx.recv().expect("worker entered the drain");

        // The ring now holds 0 descriptors and the worker consumes
        // nothing: the next `queue_capacity` packets fit, everything after
        // that is backpressure.
        assert_eq!(pool.queue_capacity(), 4);
        for flow in 1..=4 {
            assert!(pool.enqueue(flow_packet(flow)), "packet {flow} fits the ring");
        }
        assert!(!pool.enqueue(flow_packet(5)));
        assert!(!pool.enqueue(flow_packet(6)));
        assert_eq!(pool.rejected(), 2);
        assert_eq!(pool.shard_stats()[0], ShardStats { enqueued: 5, rejected: 2 });
        // The live mirrors agree with the dispatcher's view, mid-run and
        // without any barrier.
        assert_eq!(pool.counters().snapshot().shards[0].as_shard_stats(), pool.shard_stats()[0]);

        // Unblock every future drain call and let the barrier confirm that
        // accepted packets — and only those — were processed.
        drop(release_tx);
        let report = pool.flush();
        assert_eq!(report.run.processed, 5);
        assert_eq!(report.run.forwarded, 5);
    }

    /// The queue-depth satellite: a non-power-of-two depth rounds **up**,
    /// the effective capacity is exactly reachable, and the
    /// enqueued/rejected split stays exact at the boundary.
    #[test]
    fn queue_depth_rounds_up_and_boundary_accounting_is_exact() {
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
        let config = PoolConfig { workers: 1, batch_size: 1, queue_depth: 5, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let entered_tx = entered_tx.clone();
            let release_rx = Arc::clone(&release_rx);
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
            }))
        });
        assert_eq!(pool.queue_capacity(), 8, "queue_depth 5 rounds up to 8");

        // Stall the worker after packet 0, then fill the ring to *exactly*
        // its capacity: every one of the 8 must fit, the 9th must not.
        assert!(pool.enqueue(flow_packet(0)));
        entered_rx.recv().expect("worker entered the drain");
        for flow in 1..=8 {
            assert!(pool.enqueue(flow_packet(flow)), "packet {flow} of exactly capacity fits");
        }
        assert!(!pool.enqueue(flow_packet(9)), "capacity + 1 is rejected");
        assert_eq!(pool.shard_stats()[0], ShardStats { enqueued: 9, rejected: 1 });

        drop(release_tx);
        let report = pool.flush();
        assert_eq!(report.run.processed, 9, "every accepted packet, none of the rejected");
        pool.shutdown();
    }

    /// An enqueue-only caller must not strand work: when a shard's ring
    /// goes idle, the partial batch is processed (and the drain daemon
    /// runs) without waiting for a flush barrier.
    #[test]
    fn idle_worker_processes_partial_batches_without_a_barrier() {
        let (drained_tx, drained_rx) = mpsc::channel::<()>();
        let config = PoolConfig { workers: 1, batch_size: 32, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let drained_tx = drained_tx.clone();
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = drained_tx.send(());
            }))
        });
        // 5 packets — far below batch_size — and no flush call.
        for flow in 0..5 {
            assert!(pool.enqueue(flow_packet(flow)));
        }
        // The drain daemon only runs after a processed batch; its signal
        // proves the partial batch did not wait for a barrier.
        drained_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("idle worker processed its partial batch");
        let report = pool.flush();
        assert_eq!(report.run.processed, 5);
    }

    #[test]
    fn flush_shard_reports_only_that_shard() {
        let config = PoolConfig { workers: 2, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        pool.enqueue_all((0..64).map(flow_packet));
        let enqueued: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        assert!(enqueued.iter().all(|&n| n > 0), "steering collapsed: {enqueued:?}");

        let shard0 = pool.flush_shard(0);
        assert_eq!(shard0.stats.processed, enqueued[0]);
        // The full barrier afterwards reports only what shard 0 already
        // reported as zero, plus shard 1's packets.
        let report = pool.flush();
        assert_eq!(report.run.per_worker, vec![0, enqueued[1]]);
    }

    #[test]
    fn outputs_carry_verdicts_and_rewritten_packets() {
        let config = PoolConfig { workers: 2, batch_size: 4, collect_outputs: true, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let packets: Vec<PacketBuf> = (0..32).map(flow_packet).collect();
        pool.enqueue_all(packets.iter().cloned());
        let mut report = pool.flush();
        assert_eq!(report.outputs.len(), 2);
        let total: usize = report.outputs.iter().map(Vec::len).sum();
        assert_eq!(total, 32);
        for (shard, outputs) in report.outputs.iter_mut().enumerate() {
            for (skb, bv) in outputs.drain(..) {
                assert_eq!(pool.steer_to(skb.packet.data()) as usize, shard);
                assert!(matches!(bv.verdict, Verdict::Forward { oif: 1, .. }));
                assert_eq!(bv.work, seg6_core::WorkSummary::default());
                // The hop limit was decremented in place.
                let header = netpkt::Ipv6Header::parse(skb.packet.data()).unwrap();
                assert_eq!(header.hop_limit, 63);
                // Output buffers can be handed back to the arena.
                pool.recycle(skb.into_packet());
            }
        }
        assert_eq!(pool.buf_pool().available(), 32);
        // The next flush starts from a clean output buffer.
        pool.enqueue(flow_packet(0));
        let report = pool.flush();
        assert_eq!(report.outputs.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn shutdown_processes_the_backlog_and_reports_in_shard_order() {
        let config = PoolConfig { workers: 4, batch_size: 32, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        // 100 packets is not a multiple of the batch size, so shards hold
        // partial batches when the shutdown message lands.
        pool.enqueue_all((0..100).map(flow_packet));
        let enqueued: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        let totals = pool.shutdown();
        assert_eq!(totals.len(), 4);
        for (shard, (stats, expected)) in totals.iter().zip(enqueued).enumerate() {
            assert_eq!(stats.steered, expected, "shard {shard} consumed its ring");
            assert_eq!(stats.processed, expected, "shard {shard} processed its backlog");
        }
        assert_eq!(totals.iter().map(|s| s.processed).sum::<u64>(), 100);
    }

    /// Live telemetry satellite: at every quiet point (after a flush
    /// barrier), the barrier-free counter snapshot agrees exactly with the
    /// dispatcher's stats and the accumulated flush deltas — and reading
    /// it mid-run needs no barrier at all.
    #[test]
    fn live_counters_agree_with_flush_totals() {
        let config = PoolConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let counters = pool.counters();
        let mut flushed = RunReport::default();
        for round in 1..=3u64 {
            pool.enqueue_all((0..256).map(flow_packet));
            // A mid-traffic sample must be readable without a barrier and
            // never exceed what was enqueued.
            let live = counters.snapshot();
            assert!(live.processed() <= live.enqueued());
            let report = pool.flush();
            flushed.processed += report.run.processed;
            flushed.forwarded += report.run.forwarded;

            let quiet = counters.snapshot();
            assert_eq!(quiet.enqueued(), 256 * round);
            assert_eq!(quiet.processed(), flushed.processed);
            assert_eq!(quiet.forwarded(), flushed.forwarded);
            assert_eq!(quiet.in_flight(), 0);
            for (shard, sample) in quiet.shards.iter().enumerate() {
                assert_eq!(sample.as_shard_stats(), pool.shard_stats()[shard], "shard {shard}");
            }
        }
        // Counters survive (and stay exact across) shutdown.
        let totals = pool.shutdown();
        let after = counters.snapshot();
        assert_eq!(after.processed(), totals.iter().map(|s| s.processed).sum::<u64>());
    }

    /// Recycling satellite: byte-slice ingestion reuses worker-returned
    /// buffers — after warm-up, whole rounds run without the arena
    /// allocating a single fresh buffer.
    #[test]
    fn bytes_ingestion_recycles_buffers_between_rounds() {
        let config = PoolConfig { workers: 2, batch_size: 8, queue_depth: 512, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let frames: Vec<PacketBuf> = (0..128).map(flow_packet).collect();
        let frames: Vec<&[u8]> = frames.iter().map(|p| p.data()).collect();

        // Warm-up: the first rounds mint fresh buffers.
        for _ in 0..2 {
            assert_eq!(pool.enqueue_bytes_all(0, frames.iter().copied()), 128);
            assert_eq!(pool.flush().run.processed, 128);
        }
        // The first bytes-path use provisioned the arena to the pool's
        // in-flight bound, so the mint count is paid once — and staying
        // flat is deterministic, not scheduling-dependent.
        let minted = pool.buf_pool().allocations();
        assert!(minted > 0, "first bytes-path use provisioned the arena");

        // Steady state: every round is served from recycled storage.
        for round in 0..4 {
            assert_eq!(pool.enqueue_bytes_all(0, frames.iter().copied()), 128);
            assert_eq!(pool.flush().run.processed, 128);
            assert_eq!(
                pool.buf_pool().allocations(),
                minted,
                "round {round} minted fresh buffers instead of recycling"
            );
        }
        assert!(pool.buf_pool().recycle_hits() >= 4 * 128);
        // The workers' side of the loop is visible in the live counters.
        assert!(pool.counters().snapshot().recycled() >= 4 * 128);
        // Verdicts are identical to the owned-buffer path.
        let mut once = Runtime::new(
            RuntimeConfig { workers: 2, batch_size: 8, ..Default::default() },
            forwarding_datapath,
        );
        once.enqueue_all((0..128).map(flow_packet));
        let report_once = once.run_once(0);
        pool.enqueue_bytes_all(0, frames.iter().copied());
        assert_eq!(pool.flush().run, report_once);
    }

    /// An `End.BPF` program that bumps this CPU's slot of the per-CPU
    /// array at fd 1, then emits the new count through
    /// `bpf_perf_event_output(..., BPF_F_CURRENT_CPU, ...)` into the perf
    /// array at fd 2, then forwards.
    fn emitting_program() -> ebpf_vm::Program {
        let mut b = ProgramBuilder::new();
        b.mov_reg(9, 1); // save ctx
        b.store_imm(AccessSize::Word, 10, -4, 0);
        b.load_map_fd(1, 1);
        b.mov_reg(2, 10);
        b.add_imm(2, -4);
        b.call(ids::MAP_LOOKUP_ELEM);
        b.jmp_imm(jmp::JEQ, 0, 0, "out");
        b.load_mem(AccessSize::Double, 1, 0, 0);
        b.add_imm(1, 1);
        b.store_mem(AccessSize::Double, 0, 1, 0);
        // Stash the fresh per-CPU sequence number and emit it.
        b.store_mem(AccessSize::Double, 10, 1, -16);
        b.mov_reg(1, 9);
        b.load_map_fd(2, 2);
        b.load_imm64(3, 0xffff_ffff); // BPF_F_CURRENT_CPU, zero-extended
        b.mov_reg(4, 10);
        b.add_imm(4, -16);
        b.mov_imm(5, 8);
        b.call(ids::PERF_EVENT_OUTPUT);
        b.label("out");
        b.ret(retcode::BPF_OK as i32);
        b.build_program("emit-seq", ProgramType::LwtSeg6Local).expect("static program")
    }

    /// Satellite coverage: perf events emitted with `BPF_F_CURRENT_CPU`
    /// from every shard are all collected by the per-worker drain daemons
    /// — none lost (including events of the final partial batch, drained
    /// at shutdown), none duplicated.
    #[test]
    fn per_cpu_perf_events_survive_pool_shutdown_exactly_once() {
        const WORKERS: u32 = 4;
        const PACKETS: u32 = 403; // deliberately not a batch multiple
        let sid = addr("fc00::e1");
        let counter: MapHandle = PerCpuArrayMap::new(8, 1, WORKERS);
        let perf = PerfEventArray::per_cpu(PACKETS as usize, WORKERS);
        let ring = perf.perf_buffer().expect("perf array has a buffer");
        let collected: Arc<std::sync::Mutex<Vec<PerfEvent>>> = Arc::new(std::sync::Mutex::new(Vec::new()));

        let config = PoolConfig { workers: WORKERS, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, |cpu| {
            let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
            dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(1)]);
            let mut maps: HashMap<u32, MapHandle> = HashMap::new();
            maps.insert(1, Arc::clone(&counter));
            maps.insert(2, perf.clone());
            let prog = load(emitting_program(), &maps, &dp.helpers).expect("verified program");
            dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), Seg6LocalAction::EndBpf { prog, use_jit: true });
            let ring = Arc::clone(&ring);
            let collected = Arc::clone(&collected);
            ShardSetup::new(dp).with_drain(Box::new(move |cpu| {
                // Each shard's daemon drains only its own ring.
                ring.take_cpu(cpu, &mut collected.lock().unwrap());
            }))
        });

        for flow in 0..PACKETS {
            let srh = SegmentRoutingHeader::from_path(proto::UDP, &[sid, addr("fc00::99")]);
            let pkt = build_srv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                &srh,
                (1000 + flow) as u16,
                5001,
                &[0u8; 16],
                64,
            );
            assert!(pool.enqueue(pkt));
        }
        let per_shard: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        let totals = pool.shutdown();
        assert_eq!(totals.iter().map(|s| s.processed).sum::<u64>(), u64::from(PACKETS));

        // Every ring is empty — the daemons took everything before exit.
        assert!(ring.is_empty(), "events stranded in a ring");
        assert_eq!(ring.dropped(), 0);

        // All events collected, exactly once: per shard, the sequence
        // numbers are 1..=n with no gap or repeat.
        let collected = collected.lock().unwrap();
        assert_eq!(collected.len(), PACKETS as usize);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); WORKERS as usize];
        for event in collected.iter() {
            let seq = u64::from_le_bytes(event.data.as_slice().try_into().expect("8-byte event"));
            seqs[event.cpu as usize].push(seq);
        }
        for (cpu, mut shard_seqs) in seqs.into_iter().enumerate() {
            shard_seqs.sort_unstable();
            let expected: Vec<u64> = (1..=per_shard[cpu]).collect();
            assert_eq!(shard_seqs, expected, "shard {cpu} events lost or duplicated");
            assert!(!expected.is_empty(), "shard {cpu} saw no traffic — steering collapsed");
        }
    }
}
