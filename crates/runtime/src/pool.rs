//! The persistent worker pool: long-lived shard threads fed over
//! lock-free SPSC descriptor rings, shared by any number of **tenants**.
//!
//! [`Runtime::run_threaded`](crate::Runtime::run_threaded) pays one OS
//! thread spawn per shard on *every* call — fine for a one-shot benchmark,
//! fatal for a steady-state datapath. Kernel datapaths (and the paper's
//! End.BPF deployment) instead keep one long-lived worker per receive
//! queue: the NIC steers flows to queues with RSS, each queue's CPU runs
//! forever, and user space only observes counters. One such host, though,
//! rarely serves a single routing context: seg6local behaviours like
//! `End.T` and `End.DT6` forward via *specific* tables (VRFs), and one
//! Linux box runs many VRFs on the same set of CPUs. This module
//! reproduces that lifecycle, with a DPDK-style descriptor plane
//! underneath and tenancy as a first-class concept:
//!
//! * [`WorkerPool::new`] spawns N shard threads **once**; each thread owns
//!   a dense `Vec<Seg6Datapath>` — one datapath per registered **tenant**,
//!   each pinned to the shard's CPU id — for the pool's whole life. The
//!   crate-level [`thread_spawn_count`](crate::thread_spawn_count) hook
//!   lets tests assert that the steady state (including tenant
//!   registration) spawns nothing.
//! * [`WorkerPool::add_tenant`] adds a routing context at runtime from a
//!   [`TenantSpec`]: a datapath source (a per-shard builder closure, or a
//!   configured template the pool [`Seg6Datapath::fork_for_cpu`]s per
//!   shard) plus the tenant's QoS knobs ([`TenantQos`]). Each fork is
//!   shipped to its worker over the sideband control channel and
//!   acknowledged before `add_tenant` returns — so by the time a tenant's
//!   first descriptor can be published, every worker has its datapath
//!   installed. The returned [`TenantId`] stamps descriptors:
//!   [`WorkerPool::tenant`] hands out a [`Tenant`] guard whose [`Ingress`]
//!   methods tag every packet with the tenant, and workers execute each
//!   descriptor on that tenant's datapath. The pool itself implements
//!   [`Ingress`] as the single-tenant shorthand (tenant 0,
//!   [`TenantId::DEFAULT`]).
//! * **Per-tenant QoS** rides the same descriptor plane with no extra
//!   locks. At admission, a tenant with a [`TenantQos::ring_quota`] can
//!   never hold more than its share of a shard's descriptor ring in
//!   flight (the dispatcher compares its cumulative admitted count with
//!   the worker's relaxed-atomic processed counter — an estimate that only
//!   ever errs towards admitting *less*), and a tenant with a
//!   [`TenantQos::cost_budget`] spends from a token bucket (tokens/sec,
//!   refilled on the shard clock carried by the packets' RX timestamps)
//!   priced by the [`work_cost`] model; over-budget packets are shed at
//!   admission and counted exactly as `rejected_over_budget`. Inside a
//!   worker's poll, tenant runs are selected by **deficit round-robin**
//!   (quantum ∝ [`TenantQos::weight`]), each run charged its actual
//!   [`WorkSummary`](seg6_core::WorkSummary)-priced cost — a flooding
//!   tenant burns its own deficit, not its neighbours' latency.
//! * The dispatcher steers packets by RSS flow hash into per-shard
//!   **lock-free SPSC rings** ([`crate::ring`]) carrying
//!   `(tenant, packet)` descriptors — no per-descriptor rendezvous with
//!   shared channel state, no blocking paths, wait-free on both sides.
//!   Batch ingestion APIs ([`WorkerPool::enqueue_all`],
//!   [`WorkerPool::enqueue_bytes_all`] and their [`Tenant`] twins) stage
//!   descriptors per shard and publish each shard's burst with a *single*
//!   atomic release. A full ring rejects the packet and counts it — per
//!   shard ([`ShardStats::rejected`]) *and* per tenant
//!   ([`WorkerPool::tenant_stats`]) — backpressure behaves like a NIC
//!   dropping on a full RX ring, it never blocks the dispatcher.
//!   [`PoolConfig::queue_depth`] rounds **up** to the next power of two
//!   ([`WorkerPool::queue_capacity`]) and the boundary is exact.
//! * Workers drain their rings **adaptively**, NAPI-style: each poll takes
//!   one burst sized by the observed ring occupancy, capped at
//!   [`PoolConfig::napi_budget`] (the budget a kernel NAPI poll gets
//!   before it must yield), and processes it immediately — a lull's
//!   packets are never delayed, a burst is amortised, and a saturated
//!   ring cannot starve the control channel for more than one budget's
//!   worth of work. Processing stays bounded by
//!   [`PoolConfig::batch_size`] and split into **tenant runs** selected
//!   by deficit round-robin (see above): up to `batch_size` of one
//!   tenant's queued packets execute as one
//!   [`Seg6Datapath::process_batch_verdicts`] call on that tenant's
//!   datapath, with the drain daemon run after every run — the
//!   pre-tenancy perf-drain cadence is preserved exactly.
//! * Packet storage is **recycled** across tenants: each worker returns
//!   drained [`PacketBuf`]s through a per-shard free-ring; the dispatcher
//!   drains free-rings into a [`BufPool`] arena whose in-flight bound is
//!   sized for the worker count *and* the tenant count, so steady-state
//!   byte-slice ingestion performs **zero heap allocations end-to-end**
//!   however many tenants share the pool (proven by the `alloc-counter`
//!   gate, `tests/pool_zero_alloc.rs`).
//! * Control traffic (flush barriers, tenant registration, shutdown)
//!   moves on a **sideband channel** checked between bursts, so the
//!   descriptor plane stays pure data. Idle workers **park** (and a
//!   publish to a sleeping shard's ring unparks it).
//! * Live counters are **per tenant × per shard** ([`PoolCounters`], via
//!   [`WorkerPool::counters`]): relaxed-atomic cells readable at any time
//!   without a flush barrier, with the tenant rows summing exactly to the
//!   aggregated per-shard view.
//! * [`WorkerPool::flush`] is a barrier: every shard finishes what it was
//!   handed before the barrier message and reports. Results come back **in
//!   shard index order**; collected outputs carry their [`TenantId`].
//! * Dropping or [`WorkerPool::shutdown`]ting the pool delivers a shutdown
//!   message, lets every worker finish its backlog, runs the final drain,
//!   and joins the threads. No packet or perf event is stranded.

use crate::affinity::PinPolicy;
use crate::ring::{self, Consumer, Producer};
use crate::telemetry::{PoolCounters, TenantCounters};
use crate::{count_thread_spawn, RunReport, WorkerStats, MAX_WORKERS};
use netpkt::flow::{rss_hash_packet, rss_hash_packet_symmetric, steer};
use netpkt::{BufPool, PacketBuf};
use seg6_core::{BatchVerdict, Seg6Datapath, Skb, WorkSummary};
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Identifier of one tenant (routing context) of a [`WorkerPool`]: a dense
/// index into every shard's datapath vector and into the per-tenant
/// counter rows. Obtained from [`WorkerPool::add_tenant`];
/// [`TenantId::DEFAULT`] is the tenant the pool's construction builder
/// created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u16);

impl TenantId {
    /// The tenant created by [`WorkerPool::new`]'s builder — what the
    /// pool's plain (tenant-less) `enqueue*` methods stamp.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The dense index of this tenant (registration order).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    pub(crate) fn from_index(index: usize) -> TenantId {
        TenantId(u16::try_from(index).expect("tenant count fits a u16"))
    }
}

/// Cost-model token every packet is charged, whatever work it ends up
/// doing — the admission estimate a [`TenantQos::cost_budget`] spends per
/// packet (the work surcharges below are unknown before execution and are
/// debited from the bucket afterwards, from the worker's live counters).
pub const COST_BASE: u64 = 1;
/// Cost-model surcharge for a packet whose seg6local behaviour ran.
pub const COST_SEG6LOCAL: u64 = 2;
/// Cost-model surcharge for a packet that executed an eBPF program
/// (End.BPF or an LWT hook) — the expensive work class.
pub const COST_BPF: u64 = 4;
/// Cost-model surcharge for a packet a transit behaviour (SRH
/// insertion/encapsulation) was applied to.
pub const COST_TRANSIT: u64 = 2;

/// Prices one processed packet from the work classes the datapath already
/// emits ([`seg6_core::WorkSummary`]): the base token plus a surcharge per
/// exercised class. This is the unit [`TenantQos::cost_budget`] buckets
/// are denominated in and the charge deficit round-robin subtracts from a
/// tenant's deficit after every run.
pub fn work_cost(work: &WorkSummary) -> u64 {
    COST_BASE
        + if work.seg6local { COST_SEG6LOCAL } else { 0 }
        + if work.bpf { COST_BPF } else { 0 }
        + if work.transit { COST_TRANSIT } else { 0 }
}

/// A tenant's QoS knobs. The default is exactly the pre-QoS behaviour:
/// weight 1, no ring quota, no cost budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQos {
    /// Deficit-round-robin weight: each scheduling round credits the
    /// tenant `weight × batch_size ×` [`COST_BASE`] deficit tokens, so a
    /// weight-4 tenant's backlog gets four times the worker time of a
    /// weight-1 tenant's. Clamped to at least 1.
    pub weight: u32,
    /// Share of each shard's descriptor ring this tenant may hold in
    /// flight, as a fraction in `(0, 1]`. `None` (default) means the
    /// tenant competes for the whole ring, exactly as before QoS existed.
    pub ring_quota: Option<f64>,
    /// Cost-budget rate in [`work_cost`] tokens per second, refilled on
    /// the shard clock (the RX timestamps packets are enqueued with) with
    /// a one-second burst allowance. Packets arriving with the bucket
    /// empty are shed at admission and counted as `rejected_over_budget`.
    /// `None` (default) means unmetered.
    pub cost_budget: Option<u64>,
}

impl Default for TenantQos {
    fn default() -> Self {
        TenantQos { weight: 1, ring_quota: None, cost_budget: None }
    }
}

/// Where a new tenant's per-shard datapaths come from.
enum TenantSource<'a> {
    /// Fork one configured template per shard
    /// ([`Seg6Datapath::fork_for_cpu`]).
    Template(&'a Seg6Datapath),
    /// Run a builder once per shard with the shard's CPU id.
    Builder(Box<dyn FnMut(u32) -> Seg6Datapath + 'a>),
}

/// Everything [`WorkerPool::add_tenant`] needs: the datapath source plus
/// the tenant's [`TenantQos`]. Built with [`TenantSpec::from_datapath`]
/// or [`TenantSpec::build_with`], then refined with the builder methods —
/// the defaults reproduce the pre-QoS positional `register_tenant` calls
/// exactly.
pub struct TenantSpec<'a> {
    source: TenantSource<'a>,
    qos: TenantQos,
}

impl<'a> TenantSpec<'a> {
    /// A tenant whose shard datapaths are
    /// [`Seg6Datapath::fork_for_cpu`] forks of `template` — the "one
    /// host, many VRFs" shape simnet's shared host pool and srv6d use.
    pub fn from_datapath(template: &'a Seg6Datapath) -> Self {
        TenantSpec { source: TenantSource::Template(template), qos: TenantQos::default() }
    }

    /// A tenant whose shard datapaths come from `builder`, run once per
    /// shard on the registering thread with the shard's CPU id.
    pub fn build_with(builder: impl FnMut(u32) -> Seg6Datapath + 'a) -> Self {
        TenantSpec { source: TenantSource::Builder(Box::new(builder)), qos: TenantQos::default() }
    }

    /// Sets the deficit-round-robin weight (clamped to at least 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.qos.weight = weight.max(1);
        self
    }

    /// Caps the tenant's in-flight share of each shard's descriptor ring.
    /// `share` must be in `(0, 1]`.
    pub fn ring_quota(mut self, share: f64) -> Self {
        assert!(share > 0.0 && share <= 1.0, "ring quota must be a fraction in (0, 1], got {share}");
        self.qos.ring_quota = Some(share);
        self
    }

    /// Meters the tenant at `tokens_per_sec` [`work_cost`] tokens per
    /// second (see [`TenantQos::cost_budget`]).
    pub fn cost_budget(mut self, tokens_per_sec: u64) -> Self {
        self.qos.cost_budget = Some(tokens_per_sec);
        self
    }

    /// Replaces the whole QoS block at once — the form config-driven
    /// callers (srv6d) use after validating their own knob syntax.
    pub fn qos(mut self, qos: TenantQos) -> Self {
        self.qos = qos;
        self
    }
}

/// Live QoS state shared between the dispatcher and every shard: the DRR
/// weight, read (relaxed) by workers each scheduling round and written in
/// place by [`WorkerPool::update_tenant_qos`] — a weight change needs no
/// control-channel round-trip, which is what lets srv6d's reload treat it
/// as a live patch rather than a slot rebuild.
struct QosCell {
    weight: AtomicU32,
}

impl QosCell {
    fn new(weight: u32) -> Self {
        QosCell { weight: AtomicU32::new(weight.max(1)) }
    }
}

/// A tenant's cost-budget bucket, owned by the dispatcher and refilled on
/// the shard clock the packets themselves carry (their RX timestamps). The
/// capacity is one second's rate — a tenant idle for longer than a second
/// gets at most one second of burst. Admission charges [`COST_BASE`] per
/// packet (the work is unknown before execution); the surcharge the
/// workers actually measured is debited afterwards from their live `cost`
/// counters, so the budget genuinely meters [`work_cost`] tokens.
struct TokenBucket {
    /// Tokens per second, and the bucket capacity.
    rate: u64,
    /// Current level.
    tokens: u64,
    /// Shard-clock instant `tokens` was computed at.
    clock_ns: u64,
    /// Worker-measured surcharge (actual cost minus the per-packet base)
    /// already debited from the bucket.
    surcharge_seen: u64,
}

impl TokenBucket {
    fn new(rate: u64) -> Self {
        TokenBucket { rate, tokens: rate, clock_ns: 0, surcharge_seen: 0 }
    }

    /// Advances the bucket to shard-clock `now_ns`, granting whole tokens
    /// and keeping the fractional remainder as un-advanced clock.
    fn refill(&mut self, now_ns: u64) {
        if self.rate == 0 || now_ns <= self.clock_ns {
            return;
        }
        let dt = now_ns - self.clock_ns;
        let add = ((u128::from(self.rate) * u128::from(dt)) / 1_000_000_000) as u64;
        if add == 0 {
            return;
        }
        self.tokens = self.tokens.saturating_add(add).min(self.rate);
        if self.tokens == self.rate {
            self.clock_ns = now_ns;
        } else {
            self.clock_ns += ((u128::from(add) * 1_000_000_000) / u128::from(self.rate)) as u64;
        }
    }

    fn try_spend(&mut self, cost: u64) -> bool {
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Debits the work surcharge the workers measured since the last
    /// true-up: total actual cost minus `COST_BASE ×` processed, read from
    /// the tenant's relaxed live counters. Monotone by construction
    /// (`surcharge_seen` only grows), so a racy read can at worst debit a
    /// batch early — never twice.
    fn debit_surcharge(&mut self, cells: &TenantCounters, workers: u32) {
        let mut cost = 0u64;
        let mut processed = 0u64;
        for shard in 0..workers {
            let row = cells.shard(shard);
            cost += row.cost_relaxed();
            processed += row.processed_relaxed();
        }
        let surcharge = cost.saturating_sub(processed.saturating_mul(COST_BASE));
        let delta = surcharge.saturating_sub(self.surcharge_seen);
        self.surcharge_seen = self.surcharge_seen.max(surcharge);
        self.tokens = self.tokens.saturating_sub(delta);
    }
}

/// Dispatcher-side admission state of one tenant.
struct TenantAdmission {
    /// Per-shard descriptor-ring slot cap derived from
    /// [`TenantQos::ring_quota`]; `None` means uncapped (the tenant is
    /// admitted on ring capacity alone, the pre-QoS behaviour, with no
    /// occupancy estimation on its hot path).
    quota_slots: Option<u64>,
    /// The cost-budget bucket, if the tenant is metered.
    bucket: Option<TokenBucket>,
    /// Lifetime packets shed over budget (dispatcher aggregate; the
    /// per-shard split lives in the tenant's atomic counter rows).
    over_budget: u64,
}

impl TenantAdmission {
    fn from_qos(qos: &TenantQos, queue_capacity: usize) -> Self {
        TenantAdmission {
            quota_slots: qos.ring_quota.map(|share| quota_slots(queue_capacity, share)),
            bucket: qos.cost_budget.map(TokenBucket::new),
            over_budget: 0,
        }
    }
}

/// Converts a ring-share fraction into a per-shard slot cap: at least one
/// slot (a quota'd tenant can always make progress), at most the ring.
fn quota_slots(queue_capacity: usize, share: f64) -> u64 {
    let cap = queue_capacity as u64;
    ((queue_capacity as f64 * share) as u64).clamp(1, cap)
}

/// One tenant's reused per-publish admission accounting row.
#[derive(Debug, Default, Clone, Copy)]
struct IngressRow {
    /// Descriptors staged for this publish.
    staged: u64,
    /// Shed at admission: the tenant was at its ring-quota slot cap.
    shed_quota: u64,
    /// Shed at admission: the tenant's cost-budget bucket was empty.
    shed_budget: u64,
    /// Admitted past QoS but refused by the full ring itself.
    ring_rejected: u64,
    /// Remaining admissions this publish may grant the tenant
    /// (`u64::MAX` when unquota'd).
    allowance: u64,
}

/// One ring descriptor: the packet plus the tenant whose datapath must
/// execute it.
struct Desc {
    tenant: TenantId,
    skb: Skb,
}

/// A per-shard drain daemon: called on the worker thread after every
/// processed batch (and one final time at shutdown) with the shard's CPU
/// id. The canonical implementation drains the shard's per-CPU perf ring
/// into a collector — see `srv6_nf::daemons::DelayCollector::shard_drain`.
pub type BatchDrain = Box<dyn FnMut(u32) + Send>;

/// What one worker shard is built from: its default tenant's datapath and
/// an optional per-batch drain daemon (the daemon is per *shard* — it runs
/// after every batch whatever mix of tenants the batch carried).
pub struct ShardSetup {
    /// The shard's default-tenant datapath (the pool pins it to the
    /// shard's CPU id).
    pub datapath: Seg6Datapath,
    /// Drain daemon run after every batch on this shard, if any.
    pub drain: Option<BatchDrain>,
}

impl ShardSetup {
    /// A shard with a datapath and no drain daemon.
    pub fn new(datapath: Seg6Datapath) -> Self {
        ShardSetup { datapath, drain: None }
    }

    /// Attaches a per-batch drain daemon (builder form).
    pub fn with_drain(mut self, drain: BatchDrain) -> Self {
        self.drain = Some(drain);
        self
    }
}

impl From<Seg6Datapath> for ShardSetup {
    fn from(datapath: Seg6Datapath) -> Self {
        ShardSetup::new(datapath)
    }
}

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker shards (receive queues). Clamped to
    /// `1..=`[`MAX_WORKERS`].
    pub workers: u32,
    /// The dispatcher's staging burst: batch ingestion
    /// ([`WorkerPool::enqueue_all`] / [`WorkerPool::enqueue_bytes_all`])
    /// publishes a shard's ring once per this many staged packets — the
    /// ingress-side amortisation knob.
    pub batch_size: usize,
    /// Capacity of each shard's descriptor ring, in packets, **rounded up
    /// to the next power of two** (see [`WorkerPool::queue_capacity`] for
    /// the effective value). An enqueue onto a full ring is rejected and
    /// counted — the pool's backpressure signal.
    pub queue_depth: usize,
    /// Cap on one worker poll, NAPI-style: a worker *dequeues* bursts
    /// sized by the observed ring occupancy, up to this budget — a lull's
    /// packets are processed immediately, a backlog is consumed
    /// `napi_budget` descriptors at a time so control messages (flush,
    /// tenant registration, shutdown) are serviced at least once per
    /// budget's worth of work. Mirrors the kernel's NAPI `budget`
    /// (default 64 there; 256 here, sized for the userspace batch emit
    /// surface). *Processing* stays bounded by [`PoolConfig::batch_size`]:
    /// a poll's packets execute in `batch_size`-capped batches with the
    /// drain daemon run after each, so per-CPU perf rings provisioned
    /// against `batch_size` keep their guarantee whatever the budget.
    pub napi_budget: usize,
    /// Steer with the symmetric flow hash, keeping both directions of a
    /// flow on one worker.
    pub symmetric_steering: bool,
    /// Retain each processed packet and its [`BatchVerdict`] so
    /// [`WorkerPool::flush`] can return them (tagged with their
    /// [`TenantId`]). Costs one buffered `Skb` per packet per flush window
    /// (those buffers are not recycled through the free-ring — hand them
    /// back with [`WorkerPool::recycle`] after reading them); leave off
    /// for counter-only workloads.
    pub collect_outputs: bool,
    /// How shard threads pin themselves to CPU cores
    /// (`sched_setaffinity(2)` at spawn, inside the worker thread). The
    /// observed placement — pinned core and its NUMA node — is reported
    /// per shard in [`PoolSnapshot::placement`](crate::PoolSnapshot).
    /// Pins that fail (non-Linux, forbidden cpuset) leave the shard
    /// unpinned and running; pinning is a placement hint, never a
    /// correctness requirement.
    pub pinning: PinPolicy,
    /// Pin the dispatcher — the thread that calls [`WorkerPool::new`] and
    /// later drives ingestion — to this core. Applied best-effort during
    /// construction.
    pub pin_dispatcher: Option<u32>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 1,
            batch_size: 32,
            queue_depth: 1024,
            napi_budget: 256,
            symmetric_steering: false,
            collect_outputs: false,
            pinning: PinPolicy::None,
            pin_dispatcher: None,
        }
    }
}

/// Admission counters, as visible to the dispatcher — kept per shard
/// ([`WorkerPool::shard_stats`]) and per tenant
/// ([`WorkerPool::tenant_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Packets accepted into a descriptor ring.
    pub enqueued: u64,
    /// Packets rejected because the ring was full (backpressure).
    pub rejected: u64,
}

/// What one shard reports at a flush barrier: its counter deltas since the
/// previous flush, plus the processed packets when
/// [`PoolConfig::collect_outputs`] is on.
pub struct ShardFlush {
    /// Verdict/batch counter deltas since the last flush.
    pub stats: WorkerStats,
    /// The packets processed since the last flush, with the tenant that
    /// executed them and their verdicts, in processing order. Empty unless
    /// [`PoolConfig::collect_outputs`].
    pub outputs: Vec<(TenantId, Skb, BatchVerdict)>,
}

/// Aggregate result of one [`WorkerPool::flush`] barrier.
pub struct PoolReport {
    /// Aggregated verdict counters since the previous flush, with
    /// `per_worker` in shard index order.
    pub run: RunReport,
    /// Per-shard outputs, indexed by shard id. Inner vectors are empty
    /// unless [`PoolConfig::collect_outputs`] is set.
    pub outputs: Vec<Vec<(TenantId, Skb, BatchVerdict)>>,
}

/// Result of a [`WorkerPool::drain`]: the pool's terminal state, produced
/// after the final flush barrier and before the worker threads exit.
pub struct DrainReport {
    /// The final [`WorkerPool::flush`] barrier's report — the last window
    /// of verdicts (and collected outputs) before shutdown.
    pub last_flush: PoolReport,
    /// The per-tenant × per-shard counters at quiescence. Final by
    /// construction: the drain consumed the pool, so no enqueue can
    /// follow the snapshot.
    pub counters: crate::telemetry::PoolSnapshot,
    /// Each shard's lifetime totals, in shard index order.
    pub worker_totals: Vec<WorkerStats>,
}

/// Sideband control messages, delivered outside the descriptor ring and
/// checked by the worker between bursts.
enum Ctrl {
    /// Barrier: consume the descriptor ring dry, process everything, and
    /// report. Everything published before this message was sent is
    /// covered (the dispatcher publishes before it signals).
    Flush(Sender<ShardFlush>),
    /// Install a new tenant's datapath (plus its live-counter row and its
    /// shared QoS cell) on this shard, then acknowledge. The dispatcher
    /// waits for every shard's acknowledgement before `add_tenant`
    /// returns, so no descriptor stamped with the new tenant can reach a
    /// worker that has not installed it.
    AddTenant { datapath: Box<Seg6Datapath>, cells: Arc<TenantCounters>, qos: Arc<QosCell>, done: Sender<()> },
    /// Mint `count` packet buffers *on this shard's thread* and ship them
    /// back for the dispatcher's arena. First-touch allocation policy
    /// makes the pages land on the minting thread's NUMA node, so a
    /// pinned shard's arena segment is local to its core — the reason
    /// arena provisioning is a worker-side operation rather than a
    /// dispatcher-side `prefill`.
    Provision { count: usize, headroom: usize, done: Sender<Vec<PacketBuf>> },
    /// Finish the backlog, run the final drain, exit.
    Shutdown,
}

/// Dispatcher-side handle of one shard: the descriptor-ring producer, the
/// free-ring consumer, the staging buffer, and the wakeup state.
struct ShardTx {
    /// Descriptor ring into the worker.
    ring: Producer<Desc>,
    /// Free-ring out of the worker: drained packet buffers coming back.
    freelist: Consumer<PacketBuf>,
    /// Sideband control channel.
    ctrl: Sender<Ctrl>,
    /// Staged descriptors not yet published (always empty between public
    /// API calls; batch ingestion fills it up to one burst).
    staging: Vec<Desc>,
    /// The worker thread, for unparking.
    thread: std::thread::Thread,
    /// Set by the worker just before it parks; cleared (by whoever acts
    /// on it) before unparking. The dispatcher's publish/control paths
    /// check it so a sleeping shard always wakes.
    sleeping: Arc<AtomicBool>,
}

impl ShardTx {
    /// Wakes the worker if it is parked (or about to park). Callers must
    /// make their work visible (ring publish, control send) *before*
    /// calling this; the SeqCst fence pairs with the worker's pre-park
    /// fence so either the worker sees the work, or this sees the worker
    /// sleeping.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping.swap(false, Ordering::SeqCst) {
            self.thread.unpark();
        }
    }
}

/// The persistent, multi-tenant worker pool. See the [module docs](self)
/// for the lifecycle.
pub struct WorkerPool {
    config: PoolConfig,
    shards: Vec<ShardTx>,
    handles: Vec<JoinHandle<WorkerStats>>,
    /// Admission counters per shard (summed over tenants).
    stats: Vec<ShardStats>,
    /// Admission counters per tenant (summed over shards).
    tenant_stats: Vec<ShardStats>,
    counters: Arc<PoolCounters>,
    /// Dispatcher-held per-tenant counter rows, indexed by tenant.
    tenant_cells: Vec<Arc<TenantCounters>>,
    /// The dispatcher's recycling arena, refilled from the free-rings.
    bufs: BufPool,
    /// Reused scratch for draining free-rings.
    reclaim_scratch: Vec<PacketBuf>,
    /// Reused per-tenant admission rows for exact per-tenant accounting
    /// at publish time.
    ingress_scratch: Vec<IngressRow>,
    /// Per-tenant admission state: ring-quota slot caps and cost-budget
    /// buckets, indexed by tenant.
    admission: Vec<TenantAdmission>,
    /// Per-tenant QoS cells shared with every shard (DRR weights),
    /// indexed by tenant.
    qos_cells: Vec<Arc<QosCell>>,
    /// Cumulative per-tenant × per-shard admitted counts (tenant-major
    /// flat layout), compared against the workers' processed counters to
    /// estimate a quota'd tenant's ring occupancy without any lock.
    admitted: Vec<u64>,
    queue_capacity: usize,
    /// Whether the arena has been provisioned for the byte-slice
    /// ingestion path (done once, on its first use; re-provisioned when a
    /// tenant registers afterwards).
    bytes_arena_ready: bool,
}

impl WorkerPool {
    /// Spawns the pool. `builder` runs once per shard, on the calling
    /// thread, with the shard's CPU id; the [`ShardSetup`] it returns (a
    /// bare [`Seg6Datapath`] converts) becomes the **default tenant**
    /// ([`TenantId::DEFAULT`]) on that shard's thread, where it lives
    /// until shutdown. These construction-time spawns are the only ones
    /// the pool ever performs — registering more tenants later reuses the
    /// same threads.
    pub fn new<S: Into<ShardSetup>>(config: PoolConfig, mut builder: impl FnMut(u32) -> S) -> Self {
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let config = PoolConfig { workers, ..config };
        let queue_capacity = config.queue_depth.max(1).next_power_of_two();
        let counters = Arc::new(PoolCounters::new(workers));
        // Resolve the pin policy against the cores this process may
        // actually use (cgroup cpusets included); each worker applies its
        // own pin on its own thread and records what it got.
        let pin_plan = config.pinning.plan(workers, &crate::affinity::available_cores());
        if let Some(core) = config.pin_dispatcher {
            let _ = crate::affinity::pin_current_thread(core);
        }
        let default_cells = counters.tenant(TenantId::DEFAULT);
        let default_qos = Arc::new(QosCell::new(1));
        let burst = worker_burst(&config);
        let mut shards = Vec::with_capacity(workers as usize);
        let mut handles = Vec::with_capacity(workers as usize);
        for id in 0..workers {
            let setup: ShardSetup = builder(id).into();
            let mut datapath = setup.datapath;
            datapath.cpu_id = id;
            let (ring_tx, ring_rx) = ring::spsc_ring::<Desc>(queue_capacity);
            let (free_tx, free_rx) = ring::spsc_ring::<PacketBuf>(queue_capacity);
            let (ctrl_tx, ctrl_rx) = channel();
            let sleeping = Arc::new(AtomicBool::new(false));
            let state = ShardState {
                id,
                datapaths: vec![datapath],
                queues: vec![VecDeque::with_capacity(burst)],
                deficit: vec![0],
                qos: vec![Arc::clone(&default_qos)],
                drr_next: 0,
                rx: Vec::with_capacity(burst),
                stats: WorkerStats::default(),
                outputs: Vec::new(),
                verdicts: Vec::with_capacity(burst),
                drain: setup.drain,
                free: free_tx,
                free_staging: Vec::with_capacity(burst),
                free_tenants: Vec::with_capacity(burst),
                tenant_cells: vec![Arc::clone(&default_cells)],
                recycled_scratch: vec![0],
                sleeping: Arc::clone(&sleeping),
            };
            count_thread_spawn();
            let worker_config = config.clone();
            let pin = pin_plan[id as usize];
            let placement = Arc::clone(&counters);
            let handle = std::thread::Builder::new()
                .name(format!("seg6-worker-{id}"))
                .spawn(move || {
                    let pinned = pin.filter(|&core| crate::affinity::pin_current_thread(core).is_ok());
                    let numa = pinned.and_then(crate::affinity::numa_node_of_cpu);
                    placement.record_placement(id, pinned, numa);
                    worker_loop(worker_config, state, ctrl_rx, ring_rx)
                })
                .expect("spawn worker thread");
            shards.push(ShardTx {
                ring: ring_tx,
                freelist: free_rx,
                ctrl: ctrl_tx,
                staging: Vec::with_capacity(config.batch_size.max(1)),
                thread: handle.thread().clone(),
                sleeping,
            });
            handles.push(handle);
        }
        let bufs = BufPool::new(Self::in_flight_bound(&config, queue_capacity, 1));
        WorkerPool {
            config,
            shards,
            handles,
            stats: vec![ShardStats::default(); workers as usize],
            tenant_stats: vec![ShardStats::default()],
            counters,
            tenant_cells: vec![default_cells],
            bufs,
            reclaim_scratch: Vec::new(),
            ingress_scratch: vec![IngressRow::default()],
            admission: vec![TenantAdmission::from_qos(&TenantQos::default(), queue_capacity)],
            qos_cells: vec![default_qos],
            admitted: vec![0; workers as usize],
            queue_capacity,
            bytes_arena_ready: false,
        }
    }

    /// Upper bound on packet buffers that can be in flight and
    /// *unreclaimable* at once (per shard: a full descriptor ring, the
    /// worker's current batch, the dispatcher's staging), plus one slack
    /// buffer **per tenant** (each tenant's ingestion path can hold one
    /// buffer in hand mid-enqueue). Free-ring contents are excluded — the
    /// dispatcher drains those before minting. An arena provisioned to
    /// this bound can never run dry, whatever the worker scheduling and
    /// however the tenants interleave.
    fn in_flight_bound(config: &PoolConfig, queue_capacity: usize, tenants: usize) -> usize {
        // A worker holds at most one dequeued poll at a time, and a poll
        // can never exceed the ring's own capacity however large the NAPI
        // budget is — without the cap, small-ring pools (simnet's
        // queue_depth 64) would over-provision the arena several-fold.
        let poll = worker_burst(config).min(queue_capacity);
        config.workers as usize * (queue_capacity + poll + config.batch_size.max(1)) + tenants
    }

    /// Builds a pool whose shard `q` runs [`Seg6Datapath::fork_for_cpu`]
    /// of `datapath` as the default tenant — the shape simnet uses to put
    /// one configured node datapath on every receive queue. Further nodes
    /// join the same pool through [`WorkerPool::add_tenant`] with a
    /// [`TenantSpec::from_datapath`] spec.
    pub fn from_datapath(config: PoolConfig, datapath: &Seg6Datapath) -> Self {
        WorkerPool::new(config, |cpu| datapath.fork_for_cpu(cpu))
    }

    /// Registers a new tenant from a [`TenantSpec`]: the spec's datapath
    /// source runs once per shard on the calling thread (builders get the
    /// shard's CPU id; a template is [`Seg6Datapath::fork_for_cpu`]'d per
    /// shard — shared-`Arc` FIB/VRF tables, snapshot SID/transit/LWT
    /// tables with shared program and map handles, fresh statistics);
    /// each datapath is shipped to its worker over the control channel
    /// and **acknowledged** before this returns, so the returned
    /// [`TenantId`] is immediately safe to enqueue with. No threads are
    /// spawned; the live-counter block grows a per-shard row for the
    /// tenant, the dispatcher installs the spec's [`TenantQos`], and the
    /// byte-ingestion arena's in-flight bound is re-provisioned for the
    /// new tenant count.
    pub fn add_tenant(&mut self, spec: TenantSpec<'_>) -> TenantId {
        let TenantSpec { source, qos } = spec;
        let mut builder: Box<dyn FnMut(u32) -> Seg6Datapath + '_> = match source {
            TenantSource::Template(template) => Box::new(move |cpu| template.fork_for_cpu(cpu)),
            TenantSource::Builder(builder) => builder,
        };
        let id = TenantId::from_index(self.tenant_cells.len());
        let cells = self.counters.add_tenant();
        let qos_cell = Arc::new(QosCell::new(qos.weight));
        let acks: Vec<Receiver<()>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(cpu, tx)| {
                let mut datapath = builder(cpu as u32);
                datapath.cpu_id = cpu as u32;
                let (done_tx, done_rx) = channel();
                tx.ctrl
                    .send(Ctrl::AddTenant {
                        datapath: Box::new(datapath),
                        cells: Arc::clone(&cells),
                        qos: Arc::clone(&qos_cell),
                        done: done_tx,
                    })
                    .expect("worker alive");
                tx.wake();
                done_rx
            })
            .collect();
        for ack in acks {
            ack.recv().expect("worker installed the tenant");
        }
        self.tenant_cells.push(cells);
        self.tenant_stats.push(ShardStats::default());
        self.ingress_scratch.push(IngressRow::default());
        self.admission.push(TenantAdmission::from_qos(&qos, self.queue_capacity));
        self.qos_cells.push(qos_cell);
        self.admitted.extend(std::iter::repeat_n(0, self.config.workers as usize));
        let bound = Self::in_flight_bound(&self.config, self.queue_capacity, self.tenant_cells.len());
        self.bufs.set_max_retained(bound);
        if self.bytes_arena_ready {
            self.provision_arena(bound);
        }
        id
    }

    /// Re-tunes a registered tenant's QoS in place — no control-channel
    /// round-trip, no slot rebuild, safe while traffic flows. The weight
    /// lands in the shared atomic cell the workers' DRR reads; the ring
    /// quota and cost budget are dispatcher state swapped directly (a
    /// budget rate change keeps the bucket's current level, capped at the
    /// new rate, and its refill clock). This is what srv6d's live reload
    /// uses for weight-/quota-/budget-only config diffs.
    pub fn update_tenant_qos(&mut self, tenant: TenantId, qos: TenantQos) {
        let t = tenant.index();
        assert!(t < self.tenant_cells.len(), "unregistered tenant {tenant:?}");
        self.qos_cells[t].weight.store(qos.weight.max(1), Ordering::Relaxed);
        let admission = &mut self.admission[t];
        admission.quota_slots = qos.ring_quota.map(|share| quota_slots(self.queue_capacity, share));
        admission.bucket = match (admission.bucket.take(), qos.cost_budget) {
            (Some(mut bucket), Some(rate)) => {
                bucket.rate = rate;
                bucket.tokens = bucket.tokens.min(rate);
                Some(bucket)
            }
            (None, Some(rate)) => Some(TokenBucket::new(rate)),
            (_, None) => None,
        };
    }

    /// Number of registered tenants (including the default one).
    pub fn tenants(&self) -> u32 {
        self.tenant_cells.len() as u32
    }

    /// A guard for enqueueing as `tenant`: its `enqueue*` methods stamp
    /// every descriptor with the tenant id. Panics on an unregistered id.
    pub fn tenant(&mut self, tenant: TenantId) -> Tenant<'_> {
        assert!(tenant.index() < self.tenant_cells.len(), "unregistered tenant {tenant:?}");
        Tenant { pool: self, id: tenant }
    }

    /// The pool's configuration (with the worker count clamped).
    pub fn config(&self) -> PoolConfig {
        self.config.clone()
    }

    /// Number of worker shards.
    pub fn workers(&self) -> u32 {
        self.config.workers
    }

    /// Effective per-shard descriptor-ring capacity:
    /// [`PoolConfig::queue_depth`] rounded up to the next power of two.
    /// Exactly this many packets fit an idle shard's ring before the first
    /// rejection.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Dispatcher-side admission counters, indexed by shard id (summed
    /// over tenants).
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Dispatcher-side admission counters, indexed by tenant id (summed
    /// over shards). The per-tenant backpressure view: a noisy tenant's
    /// rejections are visible without a barrier and without decoding the
    /// per-shard split.
    pub fn tenant_stats(&self) -> &[ShardStats] {
        &self.tenant_stats
    }

    /// Total packets rejected by full shard rings (backpressure),
    /// including ring-quota sheds — a quota'd tenant hitting its share of
    /// a ring is backpressure scoped to that tenant. Cost-budget sheds
    /// are counted separately ([`WorkerPool::rejected_over_budget`]).
    pub fn rejected(&self) -> u64 {
        self.stats.iter().map(|s| s.rejected).sum()
    }

    /// Total packets shed at admission by tenants' cost budgets.
    pub fn rejected_over_budget(&self) -> u64 {
        self.admission.iter().map(|a| a.over_budget).sum()
    }

    /// Packets of `tenant` shed at admission by its cost budget.
    pub fn tenant_over_budget(&self, tenant: TenantId) -> u64 {
        self.admission[tenant.index()].over_budget
    }

    /// The pool's live counters: per-tenant × per-shard relaxed-atomic
    /// mirrors of the enqueue/reject/verdict counts, readable from any
    /// thread at any time **without** a flush barrier. The `Arc` stays
    /// valid after shutdown.
    pub fn counters(&self) -> Arc<PoolCounters> {
        Arc::clone(&self.counters)
    }

    /// The dispatcher's buffer-recycling arena (telemetry: allocation vs
    /// recycle-hit counts). Buffers flow back into it from the free-rings
    /// and from [`WorkerPool::recycle`]; every tenant's ingestion draws
    /// from the same arena.
    pub fn buf_pool(&self) -> &BufPool {
        &self.bufs
    }

    /// Hands a packet buffer back to the recycling arena — the way to
    /// return [`PoolConfig::collect_outputs`] buffers after reading them,
    /// closing the zero-allocation loop for output-collecting callers.
    pub fn recycle(&mut self, buf: PacketBuf) {
        self.bufs.put(buf);
    }

    /// The shard a packet steers to, without enqueueing it. Identical
    /// steering to [`Runtime`](crate::Runtime) and to simnet's per-node
    /// RSS model: the Toeplitz hash of the 5-tuple, modulo the shard
    /// count. Steering is tenant-independent — tenants share the shards,
    /// like VRFs share a host's CPUs.
    pub fn steer_to(&self, packet: &[u8]) -> u32 {
        let hash = if self.config.symmetric_steering {
            rss_hash_packet_symmetric(packet)
        } else {
            rss_hash_packet(packet)
        };
        steer(hash, self.shards.len()) as u32
    }

    fn enqueue_at_as(&mut self, tenant: TenantId, now_ns: u64, packet: PacketBuf) -> bool {
        let shard = self.steer_to(packet.data()) as usize;
        self.shards[shard].staging.push(Desc { tenant, skb: Skb::received(packet, now_ns, 0) });
        self.publish_shard(shard) == 1
    }

    fn enqueue_all_as(&mut self, tenant: TenantId, packets: impl IntoIterator<Item = PacketBuf>) -> usize {
        let burst = self.config.batch_size.max(1);
        let mut accepted = 0;
        for packet in packets {
            let shard = self.steer_to(packet.data()) as usize;
            self.shards[shard].staging.push(Desc { tenant, skb: Skb::received(packet, 0, 0) });
            if self.shards[shard].staging.len() >= burst {
                accepted += self.publish_shard(shard);
            }
        }
        accepted + self.publish_all()
    }

    /// First use of the byte-slice ingestion path: provision the arena
    /// with the pool's whole in-flight bound up front. From then on the
    /// bytes path can never run the arena dry — the buffers a lagging
    /// worker has not returned yet are covered by the bound — so a
    /// mint-free steady state is a deterministic property, not one that
    /// depends on worker scheduling. Registering another tenant later
    /// re-provisions to the larger bound.
    fn ensure_bytes_arena(&mut self) {
        if !self.bytes_arena_ready {
            self.bytes_arena_ready = true;
            self.provision_arena(Self::in_flight_bound(
                &self.config,
                self.queue_capacity,
                self.tenant_cells.len(),
            ));
        }
    }

    /// Grows the arena to `bound` retained buffers by having each shard
    /// thread mint (and first-touch) an equal segment on its own thread —
    /// with pinned shards, the pages of a shard's segment land on that
    /// shard's NUMA node, which a dispatcher-side `prefill` could never
    /// arrange. The minted buffers still pool in the dispatcher's shared
    /// arena (buffers migrate across shards with the traffic anyway); the
    /// point is where the *first touch* happens. Worker mints count as
    /// arena allocations, so `allocations()`-flatness gates keep their
    /// meaning.
    fn provision_arena(&mut self, bound: usize) {
        self.bufs.set_max_retained(bound);
        let need = bound.saturating_sub(self.bufs.available());
        if need == 0 {
            return;
        }
        let workers = self.shards.len();
        let per = need / workers;
        let rem = need % workers;
        let replies: Vec<Receiver<Vec<PacketBuf>>> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, tx)| {
                let count = per + usize::from(i < rem);
                if count == 0 {
                    return None;
                }
                let (done_tx, done_rx) = channel();
                tx.ctrl
                    .send(Ctrl::Provision { count, headroom: self.bufs.headroom(), done: done_tx })
                    .expect("worker alive");
                tx.wake();
                Some(done_rx)
            })
            .collect();
        for reply in replies {
            for buf in reply.recv().expect("worker provisioned its arena segment") {
                self.bufs.adopt(buf);
            }
        }
    }

    fn enqueue_bytes_at_as(&mut self, tenant: TenantId, now_ns: u64, frame: &[u8]) -> bool {
        self.ensure_bytes_arena();
        if self.bufs.available() == 0 {
            self.reclaim();
        }
        let packet = self.bufs.take_filled(frame);
        self.enqueue_at_as(tenant, now_ns, packet)
    }

    fn enqueue_bytes_all_as<'a>(
        &mut self,
        tenant: TenantId,
        now_ns: u64,
        frames: impl IntoIterator<Item = &'a [u8]>,
    ) -> usize {
        self.ensure_bytes_arena();
        // Start every burst round by collecting what the workers returned
        // since the last one, keeping the free-rings far from full (a full
        // free-ring makes the worker drop storage instead of recycling).
        self.reclaim();
        let burst = self.config.batch_size.max(1);
        let mut accepted = 0;
        for frame in frames {
            if self.bufs.available() == 0 {
                self.reclaim();
            }
            let packet = self.bufs.take_filled(frame);
            let shard = self.steer_to(packet.data()) as usize;
            self.shards[shard].staging.push(Desc { tenant, skb: Skb::received(packet, now_ns, 0) });
            if self.shards[shard].staging.len() >= burst {
                accepted += self.publish_shard(shard);
            }
        }
        accepted + self.publish_all()
    }

    /// Publishes shard `shard`'s staged descriptors with one atomic
    /// release, after the per-tenant QoS admission pass: ring-quota'd
    /// tenants are capped at their slot share of this shard's ring
    /// (occupancy estimated lock-free from the dispatcher's admitted
    /// count minus the worker's relaxed processed counter — the estimate
    /// lags towards *under*-admission, never over), budgeted tenants
    /// spend [`COST_BASE`] per packet from their token bucket (refilled
    /// on the packets' own RX clocks, trued-up with the workers' measured
    /// surcharges). Everything shed or ring-rejected is accounted exactly
    /// — per shard *and* per tenant, budget sheds on their own counter —
    /// and its buffer goes back to the arena. Wakes the worker when
    /// anything was published; returns the accepted count. No locks, no
    /// allocation: every structure touched is pre-sized per tenant.
    fn publish_shard(&mut self, shard: usize) -> usize {
        let tx = &mut self.shards[shard];
        if tx.staging.is_empty() {
            return 0;
        }
        let workers = self.config.workers as usize;
        for row in &mut self.ingress_scratch {
            *row = IngressRow::default();
        }
        for desc in &tx.staging {
            self.ingress_scratch[desc.tenant.index()].staged += 1;
        }
        // Per-tenant allowances for this publish: remaining quota slots
        // (for quota'd tenants only — unquota'd tenants skip the atomic
        // reads entirely) and the budget true-up of worker-measured work
        // surcharges.
        for (tenant, row) in self.ingress_scratch.iter_mut().enumerate() {
            if row.staged == 0 {
                continue;
            }
            let admission = &mut self.admission[tenant];
            row.allowance = match admission.quota_slots {
                None => u64::MAX,
                Some(slots) => {
                    let processed = self.tenant_cells[tenant].shard(shard as u32).processed_relaxed();
                    let occupancy = self.admitted[tenant * workers + shard].saturating_sub(processed);
                    slots.saturating_sub(occupancy)
                }
            };
            if let Some(bucket) = &mut admission.bucket {
                bucket.debit_surcharge(&self.tenant_cells[tenant], self.config.workers);
            }
        }
        // In-place admission filter: admitted descriptors compact to the
        // front (their relative order — and each tenant's FIFO order — is
        // preserved; only shed descriptors scramble in the tail).
        let mut kept = 0;
        for i in 0..tx.staging.len() {
            let tenant = tx.staging[i].tenant.index();
            let row = &mut self.ingress_scratch[tenant];
            let admit = if row.allowance == 0 {
                row.shed_quota += 1;
                false
            } else {
                match &mut self.admission[tenant].bucket {
                    None => true,
                    Some(bucket) => {
                        bucket.refill(tx.staging[i].skb.rx_timestamp_ns);
                        if bucket.try_spend(COST_BASE) {
                            true
                        } else {
                            row.shed_budget += 1;
                            false
                        }
                    }
                }
            };
            if admit {
                if row.allowance != u64::MAX {
                    row.allowance -= 1;
                }
                tx.staging.swap(kept, i);
                kept += 1;
            }
        }
        for desc in tx.staging.drain(kept..) {
            self.bufs.put(desc.skb.into_packet());
        }
        let accepted = tx.ring.enqueue_burst(&mut tx.staging);
        for desc in tx.staging.drain(..) {
            self.ingress_scratch[desc.tenant.index()].ring_rejected += 1;
            self.bufs.put(desc.skb.into_packet());
        }
        self.stats[shard].enqueued += accepted as u64;
        for (tenant, row) in self.ingress_scratch.iter().enumerate() {
            if row.staged == 0 {
                continue;
            }
            let tenant_accepted = row.staged - row.shed_quota - row.shed_budget - row.ring_rejected;
            let tenant_rejected = row.shed_quota + row.ring_rejected;
            self.admitted[tenant * workers + shard] += tenant_accepted;
            self.stats[shard].rejected += tenant_rejected;
            self.tenant_stats[tenant].enqueued += tenant_accepted;
            self.tenant_stats[tenant].rejected += tenant_rejected;
            self.admission[tenant].over_budget += row.shed_budget;
            let cell = self.tenant_cells[tenant].shard(shard as u32);
            cell.add_ingress(tenant_accepted, tenant_rejected);
            if row.shed_budget > 0 {
                cell.add_over_budget(row.shed_budget);
            }
        }
        if accepted > 0 {
            self.shards[shard].wake();
        }
        accepted
    }

    /// Publishes every shard's remaining staged descriptors.
    fn publish_all(&mut self) -> usize {
        (0..self.shards.len()).map(|shard| self.publish_shard(shard)).sum()
    }

    /// Drains every shard's free-ring into the recycling arena.
    fn reclaim(&mut self) {
        for tx in &mut self.shards {
            while tx.freelist.dequeue_burst(&mut self.reclaim_scratch, 64) > 0 {
                for buf in self.reclaim_scratch.drain(..) {
                    self.bufs.put(buf);
                }
            }
        }
    }

    /// Barrier: waits until every shard has processed everything enqueued
    /// before this call, and returns the counter deltas (and outputs, when
    /// collected) since the previous flush — always in shard index order,
    /// regardless of which shard finished first.
    pub fn flush(&mut self) -> PoolReport {
        self.publish_all();
        // Hand every shard its barrier first, then collect in index order:
        // the shards drain concurrently, the ordering is imposed only on
        // the collection side.
        let replies: Vec<Receiver<ShardFlush>> = self
            .shards
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = channel();
                tx.ctrl.send(Ctrl::Flush(reply_tx)).expect("worker alive");
                tx.wake();
                reply_rx
            })
            .collect();
        let mut deltas = Vec::with_capacity(replies.len());
        let mut outputs = Vec::with_capacity(replies.len());
        for reply in replies {
            let flush = reply.recv().expect("worker answers the barrier");
            deltas.push(flush.stats);
            outputs.push(flush.outputs);
        }
        PoolReport { run: RunReport::from_deltas(&deltas), outputs }
    }

    /// Single-shard barrier: like [`WorkerPool::flush`], but only shard
    /// `shard` is flushed and reported — one reply channel, one
    /// round-trip. This is what per-event consumers (the simulator feeds
    /// one packet to one shard per arrival) use instead of paying a
    /// whole-pool barrier.
    pub fn flush_shard(&mut self, shard: u32) -> ShardFlush {
        self.publish_shard(shard as usize);
        let (reply_tx, reply_rx) = channel();
        let tx = &self.shards[shard as usize];
        tx.ctrl.send(Ctrl::Flush(reply_tx)).expect("worker alive");
        tx.wake();
        reply_rx.recv().expect("worker answers the barrier")
    }

    /// Graceful shutdown: every worker finishes its backlog, runs its
    /// final drain, and exits; the threads are joined. Returns each
    /// shard's lifetime totals, in shard index order. Dropping the pool
    /// does the same, minus the report.
    pub fn shutdown(mut self) -> Vec<WorkerStats> {
        self.stop();
        self.handles.drain(..).map(|h| h.join().expect("worker thread panicked")).collect()
    }

    /// Graceful drain, the daemon's shutdown sequence in one call: run a
    /// [`WorkerPool::flush`] barrier so every packet enqueued before this
    /// point is processed (and its outputs collected), snapshot the live
    /// counters at that quiesced moment — the **final** per-tenant
    /// accounting, since intake has stopped by construction (`self` is
    /// consumed) — then shut the workers down and join them.
    pub fn drain(mut self) -> DrainReport {
        let last_flush = self.flush();
        let counters = self.counters.snapshot();
        let worker_totals = self.shutdown();
        DrainReport { last_flush, counters, worker_totals }
    }

    fn stop(&mut self) {
        self.publish_all();
        for tx in self.shards.drain(..) {
            let _ = tx.ctrl.send(Ctrl::Shutdown);
            tx.wake();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// An enqueue guard for one tenant of a [`WorkerPool`] (from
/// [`WorkerPool::tenant`]): its [`Ingress`] methods stamp every
/// descriptor with the tenant's id, so the worker executes them on that
/// tenant's datapath and the admission/verdict counters land in the
/// tenant's rows.
pub struct Tenant<'p> {
    pool: &'p mut WorkerPool,
    id: TenantId,
}

impl Tenant<'_> {
    /// The tenant this guard enqueues as.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// This tenant's admission counters (summed over shards).
    pub fn stats(&self) -> ShardStats {
        self.pool.tenant_stats[self.id.index()]
    }

    /// Packets of this tenant shed at admission by its cost budget.
    pub fn over_budget(&self) -> u64 {
        self.pool.tenant_over_budget(self.id)
    }
}

/// The pool's ingress surface: everything that feeds packets into a
/// [`WorkerPool`] on behalf of some tenant. Implemented by the pool
/// itself (as [`TenantId::DEFAULT`] — the single-tenant shorthand) and by
/// the [`Tenant`] guard; every method body lives here, as a provided
/// method over [`Ingress::target`], so the two implementations cannot
/// drift apart. Consumers that only feed packets (srv6d's service loop,
/// simnet's pool ingestion, capture replay) take `impl Ingress` and work
/// identically against either.
///
/// The trait has generic methods, so it is deliberately not object-safe —
/// take `&mut impl Ingress` (static dispatch on the hot path), not
/// `&mut dyn Ingress`.
pub trait Ingress {
    /// The pool this handle feeds and the tenant its packets are stamped
    /// with.
    fn target(&mut self) -> (&mut WorkerPool, TenantId);

    /// Steers `packet` to its shard and enqueues it with clock `now_ns`
    /// (the packet's RX timestamp, and the time its batch will be
    /// processed at). Returns `false` — counting the rejection or QoS
    /// shed — when the packet was not admitted.
    fn enqueue_at(&mut self, now_ns: u64, packet: PacketBuf) -> bool {
        let (pool, tenant) = self.target();
        pool.enqueue_at_as(tenant, now_ns, packet)
    }

    /// [`Ingress::enqueue_at`] with clock 0 (benchmarks and tests that do
    /// not model time).
    fn enqueue(&mut self, packet: PacketBuf) -> bool {
        self.enqueue_at(0, packet)
    }

    /// Enqueues a collection of packets, returning how many were
    /// admitted. Descriptors are staged per shard and published in bursts
    /// of [`PoolConfig::batch_size`] — one atomic ring publish per burst,
    /// the amortisation the per-packet [`Ingress::enqueue`] cannot have.
    fn enqueue_all(&mut self, packets: impl IntoIterator<Item = PacketBuf>) -> usize {
        let (pool, tenant) = self.target();
        pool.enqueue_all_as(tenant, packets)
    }

    /// Copies one external frame into a **recycled** packet buffer and
    /// enqueues it with clock `now_ns` — the zero-allocation ingestion
    /// front-end for sources that own their bytes (capture replay, the
    /// simulator, srv6d's socket reads).
    fn enqueue_bytes_at(&mut self, now_ns: u64, frame: &[u8]) -> bool {
        let (pool, tenant) = self.target();
        pool.enqueue_bytes_at_as(tenant, now_ns, frame)
    }

    /// Burst form of [`Ingress::enqueue_bytes_at`]: every frame is copied
    /// into recycled storage, staged per shard, and published in
    /// single-release bursts. Returns how many frames were admitted.
    fn enqueue_bytes_all<'a>(&mut self, now_ns: u64, frames: impl IntoIterator<Item = &'a [u8]>) -> usize {
        let (pool, tenant) = self.target();
        pool.enqueue_bytes_all_as(tenant, now_ns, frames)
    }
}

impl Ingress for WorkerPool {
    fn target(&mut self) -> (&mut WorkerPool, TenantId) {
        (self, TenantId::DEFAULT)
    }
}

impl Ingress for Tenant<'_> {
    fn target(&mut self) -> (&mut WorkerPool, TenantId) {
        (self.pool, self.id)
    }
}

/// The worker-side poll burst: how many descriptors one dequeue may move.
fn worker_burst(config: &PoolConfig) -> usize {
    config.napi_budget.max(1)
}

/// How long a parked worker sleeps before re-checking its inputs on its
/// own. Wakeups are explicit (publish/control unpark the thread); the
/// timeout only bounds the damage if the dispatcher vanishes without a
/// shutdown message.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

/// The state one shard thread owns for its whole life. The batch, verdict
/// and output buffers are reused across batches: after the first batch
/// warms them up, the shard's steady state performs zero heap allocations
/// per packet (the `alloc-counter` test feature proves it). `datapaths`
/// is the shard's tenant vector — index = [`TenantId::index`].
struct ShardState {
    id: u32,
    /// One datapath per tenant, indexed by tenant id. Grown by
    /// [`Ctrl::AddTenant`]; never shrinks.
    datapaths: Vec<Seg6Datapath>,
    /// Per-tenant run queues the current poll's packets are sorted into
    /// (arrival order preserved within a tenant), indexed by tenant id.
    /// Ring buffers reused across polls — pre-sized to the poll burst at
    /// tenant install, so the steady state never grows them. The DRR
    /// scheduler takes `batch_size`-capped runs off their fronts.
    queues: Vec<VecDeque<Skb>>,
    /// Per-tenant DRR deficit, in [`work_cost`] tokens. Signed: a run's
    /// actual cost is only known after it executed, so a tenant may
    /// overdraw by at most one run and pays the debt out of its next
    /// quantum. Reset to (at most) zero when the tenant's queue empties —
    /// an idle tenant hoards no credit.
    deficit: Vec<i64>,
    /// Per-tenant shared QoS cells (DRR weights), indexed by tenant id.
    qos: Vec<Arc<QosCell>>,
    /// Round-robin cursor of the DRR scheduler: the next tenant to
    /// credit. Persists across polls so the rotation is fair over time.
    drr_next: usize,
    /// Dequeue scratch: descriptors straight off the ring, before they
    /// are sorted into the per-tenant `queues`.
    rx: Vec<Desc>,
    stats: WorkerStats,
    outputs: Vec<(TenantId, Skb, BatchVerdict)>,
    verdicts: Vec<BatchVerdict>,
    drain: Option<BatchDrain>,
    /// Free-ring back to the dispatcher: drained packet buffers.
    free: Producer<PacketBuf>,
    /// Staging for the free-ring, so a whole poll's buffers are returned
    /// with one burst publish (reused across polls)...
    free_staging: Vec<PacketBuf>,
    /// ...and, index-aligned with it, the tenant each buffer belonged to
    /// (the free-ring takes a prefix; recycle counts are attributed to
    /// tenants exactly from this).
    free_tenants: Vec<TenantId>,
    /// Live-counter rows, one per tenant, updated once per tenant run.
    tenant_cells: Vec<Arc<TenantCounters>>,
    /// Reused per-tenant recycle counts (index = tenant id).
    recycled_scratch: Vec<u64>,
    /// Park handshake; see [`ShardTx::sleeping`].
    sleeping: Arc<AtomicBool>,
}

/// One shard's thread body: NAPI-style occupancy-sized burst dequeue,
/// then `batch_size`-bounded batches per tenant run, recycle, drain,
/// report. Control messages (flush barriers, tenant registration,
/// shutdown) ride the sideband channel and are checked between bursts; an
/// idle shard parks.
fn worker_loop(
    config: PoolConfig,
    mut shard: ShardState,
    ctrl: Receiver<Ctrl>,
    mut ring: Consumer<Desc>,
) -> WorkerStats {
    let mut reported = WorkerStats::default();
    let mut clock: u64 = 0;
    loop {
        // Sideband control, between bursts: the descriptor plane never
        // carries anything but packets.
        match ctrl.try_recv() {
            Ok(Ctrl::Flush(reply)) => {
                flush_barrier(&mut shard, &mut ring, &mut clock, &config, &mut reported, reply);
                continue;
            }
            Ok(Ctrl::AddTenant { datapath, cells, qos, done }) => {
                install_tenant(&mut shard, *datapath, cells, qos, done, worker_burst(&config));
                continue;
            }
            Ok(Ctrl::Provision { count, headroom, done }) => {
                provision_segment(count, headroom, done);
                continue;
            }
            Ok(Ctrl::Shutdown) | Err(TryRecvError::Disconnected) => {
                // Finish the backlog and the final drain, so no packet or
                // perf event is stranded. Disconnection without a shutdown
                // message means the dispatcher vanished mid-panic — same
                // exit path.
                drain_ring(&mut shard, &mut ring, &mut clock, &config);
                return shard.stats;
            }
            Err(TryRecvError::Empty) => {}
        }
        // One adaptive poll: a burst sized by the ring's occupancy, capped
        // at the NAPI budget, processed immediately. Batching amortises
        // bursts, it never delays a lull's packets; the budget bounds how
        // long a saturated ring can keep control waiting.
        if poll_once(&mut shard, &mut ring, &mut clock, &config) {
            continue;
        }
        // Idle: park. The pre-park protocol pairs with `ShardTx::wake` —
        // set the flag, fence, then re-check both inputs; the dispatcher
        // publishes/sends first, fences, then checks the flag. Whatever
        // the interleaving, either this sees the work or the dispatcher
        // sees the flag and unparks.
        shard.sleeping.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if !ring.is_empty() {
            shard.sleeping.store(false, Ordering::SeqCst);
            continue;
        }
        match ctrl.try_recv() {
            Ok(Ctrl::Flush(reply)) => {
                shard.sleeping.store(false, Ordering::SeqCst);
                flush_barrier(&mut shard, &mut ring, &mut clock, &config, &mut reported, reply);
            }
            Ok(Ctrl::AddTenant { datapath, cells, qos, done }) => {
                shard.sleeping.store(false, Ordering::SeqCst);
                install_tenant(&mut shard, *datapath, cells, qos, done, worker_burst(&config));
            }
            Ok(Ctrl::Provision { count, headroom, done }) => {
                shard.sleeping.store(false, Ordering::SeqCst);
                provision_segment(count, headroom, done);
            }
            Ok(Ctrl::Shutdown) | Err(TryRecvError::Disconnected) => {
                shard.sleeping.store(false, Ordering::SeqCst);
                drain_ring(&mut shard, &mut ring, &mut clock, &config);
                return shard.stats;
            }
            Err(TryRecvError::Empty) => {
                std::thread::park_timeout(PARK_TIMEOUT);
                shard.sleeping.store(false, Ordering::SeqCst);
            }
        }
    }
}

/// Mints one shard's arena segment *on the shard's own thread*. The
/// buffers are created and their steady-state storage written here, so
/// first-touch places their pages on this thread's NUMA node; then they
/// ship back to the dispatcher's shared arena. The touch extends each
/// buffer to the default frame capacity and resets it, leaving exactly
/// what `BufPool::prefill` used to produce — just with local pages.
fn provision_segment(count: usize, headroom: usize, done: Sender<Vec<PacketBuf>>) {
    let mut segment = Vec::with_capacity(count);
    let touch = [0u8; 256];
    for _ in 0..count {
        let mut buf = PacketBuf::with_headroom(headroom);
        let mut written = 0;
        while written < netpkt::sockio::DEFAULT_FRAME_CAP {
            buf.append(&touch);
            written += touch.len();
        }
        buf.reset(headroom);
        segment.push(buf);
    }
    // A vanished dispatcher mid-provision just drops the segment.
    let _ = done.send(segment);
}

/// Installs a tenant's datapath, counter row, QoS cell and scheduler
/// state on this shard, then acknowledges to the dispatcher (which blocks
/// until every shard has). The run queue is pre-sized to the poll burst
/// here, at install time, so the data plane never grows it.
fn install_tenant(
    shard: &mut ShardState,
    datapath: Seg6Datapath,
    cells: Arc<TenantCounters>,
    qos: Arc<QosCell>,
    done: Sender<()>,
    burst: usize,
) {
    shard.datapaths.push(datapath);
    shard.tenant_cells.push(cells);
    shard.recycled_scratch.push(0);
    shard.queues.push(VecDeque::with_capacity(burst));
    shard.deficit.push(0);
    shard.qos.push(qos);
    let _ = done.send(());
}

/// One NAPI-style poll: dequeues a burst sized by the observed ring
/// occupancy (capped at the budget) and processes it. Returns whether any
/// descriptor moved.
fn poll_once(
    shard: &mut ShardState,
    ring: &mut Consumer<Desc>,
    clock: &mut u64,
    config: &PoolConfig,
) -> bool {
    let got = ring.dequeue_burst(&mut shard.rx, worker_burst(config));
    if got == 0 {
        return false;
    }
    // Sort descriptors into the per-tenant run queues (arrival order
    // preserved within a tenant); the shard clock advances per run inside
    // `run_scheduler`, not per poll, so a large NAPI burst does not
    // time-stamp its first run with its last packet's arrival.
    shard.stats.steered += got as u64;
    for desc in shard.rx.drain(..) {
        shard.queues[desc.tenant.index()].push_back(desc.skb);
    }
    run_scheduler(shard, clock, config);
    true
}

/// Consumes the descriptor ring dry (everything published so far) in
/// budget-capped bursts, then runs one final drain pass so per-CPU perf
/// consumers see the last batch's events.
fn drain_ring(shard: &mut ShardState, ring: &mut Consumer<Desc>, clock: &mut u64, config: &PoolConfig) {
    while poll_once(shard, ring, clock, config) {}
    run_drain(shard);
}

/// Serves one flush barrier: drain everything published before it, then
/// report the deltas since the previous barrier.
fn flush_barrier(
    shard: &mut ShardState,
    ring: &mut Consumer<Desc>,
    clock: &mut u64,
    config: &PoolConfig,
    reported: &mut WorkerStats,
    reply: Sender<ShardFlush>,
) {
    drain_ring(shard, ring, clock, config);
    let delta = crate::delta(*reported, shard.stats);
    *reported = shard.stats;
    let _ = reply.send(ShardFlush { stats: delta, outputs: std::mem::take(&mut shard.outputs) });
}

/// Runs the shard's drain daemon, if any.
fn run_drain(shard: &mut ShardState) {
    if let Some(drain) = &mut shard.drain {
        drain(shard.id);
    }
}

/// Schedules the accumulated poll's packets as **deficit-round-robin
/// tenant runs**, replacing strict arrival order: each round the cursor
/// visits a backlogged tenant and credits its deficit with `weight ×
/// batch_size ×` [`COST_BASE`] tokens; while the deficit is positive the
/// tenant executes runs — up to [`PoolConfig::batch_size`] of its queued
/// packets as one batch call on its datapath — and each run's **actual**
/// [`work_cost`] (priced from the emitted
/// [`WorkSummary`](seg6_core::WorkSummary) flags) is subtracted. A tenant
/// whose packets run expensive behaviours exhausts its deficit in fewer
/// packets; a higher weight buys proportionally more of the worker. The
/// drain daemon keeps its pre-tenancy cadence (after every run, and a run
/// never exceeds `batch_size` packets — per-CPU perf rings sized against
/// `batch_size` cannot overflow however large the NAPI dequeue burst
/// was). The poll's drained packet buffers are returned through the
/// free-ring with one burst publish at the end.
fn run_scheduler(shard: &mut ShardState, clock: &mut u64, config: &PoolConfig) {
    let limit = config.batch_size.max(1);
    let tenants = shard.queues.len();
    let quantum_unit = limit as i64 * COST_BASE as i64;
    let mut remaining: usize = shard.queues.iter().map(VecDeque::len).sum();
    while remaining > 0 {
        let tenant = shard.drr_next;
        shard.drr_next = (shard.drr_next + 1) % tenants;
        if shard.queues[tenant].is_empty() {
            continue;
        }
        let weight = i64::from(shard.qos[tenant].weight.load(Ordering::Relaxed).max(1));
        shard.deficit[tenant] += weight * quantum_unit;
        while shard.deficit[tenant] > 0 && !shard.queues[tenant].is_empty() {
            let run = limit.min(shard.queues[tenant].len());
            let cost = process_run(shard, TenantId::from_index(tenant), run, clock, config);
            shard.deficit[tenant] -= cost as i64;
            remaining -= run;
        }
        if shard.queues[tenant].is_empty() {
            // The queue drained: surrender leftover credit (an idle tenant
            // hoards nothing) but keep any debt for the next quantum.
            shard.deficit[tenant] = shard.deficit[tenant].min(0);
        }
    }
    if !config.collect_outputs && !shard.free_staging.is_empty() {
        // Hand the whole poll's drained storage back to the dispatcher
        // with one burst publish — the return leg costs one release store
        // per poll, like the ingress leg. Whatever a full free-ring
        // (dispatcher not reclaiming) leaves behind is dropped — recycling
        // is an optimisation, never a blocking edge.
        let recycled = shard.free.enqueue_burst(&mut shard.free_staging);
        shard.free_staging.clear();
        if recycled > 0 {
            // The free-ring took the emission-order prefix; attribute the
            // recycled buffers to their tenants exactly (pre-sized
            // scratch, one fetch_add per tenant with any).
            for count in &mut shard.recycled_scratch {
                *count = 0;
            }
            for tenant in &shard.free_tenants[..recycled] {
                shard.recycled_scratch[tenant.index()] += 1;
            }
            for (tenant, count) in shard.recycled_scratch.iter().enumerate() {
                if *count > 0 {
                    shard.tenant_cells[tenant].shard(shard.id).add_recycled(*count);
                }
            }
        }
        shard.free_tenants.clear();
    }
}

/// Executes one tenant run: the next `run` packets off the tenant's queue
/// as a single batch call on its datapath, with the shard clock advanced
/// to the run's newest RX timestamp first (the clock a kernel softirq
/// batch would run under — bounded by `batch_size`, like the run itself,
/// so `bpf_ktime_get_ns`/End.DM never see the timestamp spread of a whole
/// NAPI burst). Mirrors the run's deltas and its priced cost into the
/// tenant's live counters, runs the drain daemon, and emits the processed
/// packets — into the collected outputs (processing order, tagged with
/// the tenant) or onto the free-ring staging. Returns the run's total
/// [`work_cost`], which the DRR loop charges against the tenant's
/// deficit.
fn process_run(
    shard: &mut ShardState,
    tenant: TenantId,
    run: usize,
    clock: &mut u64,
    config: &PoolConfig,
) -> u64 {
    let t = tenant.index();
    let queue = &mut shard.queues[t];
    if queue.as_slices().0.len() < run {
        queue.make_contiguous();
    }
    let batch = &mut queue.as_mut_slices().0[..run];
    for skb in batch.iter() {
        *clock = (*clock).max(skb.rx_timestamp_ns);
    }
    let before = shard.stats;
    // The verdict buffer is shard-owned and reused, index-aligned with
    // the run: no allocation per run, no allocation per packet.
    shard.verdicts.clear();
    shard.datapaths[t].process_batch_verdicts_into(batch, *clock, &mut shard.verdicts);
    let mut cost = 0u64;
    for bv in &shard.verdicts {
        shard.stats.processed += 1;
        match bv.verdict {
            seg6_core::Verdict::Forward { .. } => shard.stats.forwarded += 1,
            seg6_core::Verdict::LocalDeliver => shard.stats.local_delivered += 1,
            seg6_core::Verdict::Drop(_) => shard.stats.dropped += 1,
        }
        cost += work_cost(&bv.work);
    }
    shard.stats.batches += 1;
    let cells = shard.tenant_cells[t].shard(shard.id);
    cells.add_batch(&crate::delta(before, shard.stats));
    cells.add_cost(cost);
    // The drain daemon runs batch-aware: after every `batch_size`-bounded
    // run's events are in the perf ring, on the worker that produced
    // them.
    run_drain(shard);
    if config.collect_outputs {
        let packets = shard.queues[t].drain(..run).zip(shard.verdicts.drain(..));
        shard.outputs.extend(packets.map(|(skb, bv)| (tenant, skb, bv)));
    } else {
        for skb in shard.queues[t].drain(..run) {
            shard.free_staging.push(skb.into_packet());
            shard.free_tenants.push(tenant);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{thread_spawn_count, Runtime, RuntimeConfig};
    use ebpf_vm::helpers::ids;
    use ebpf_vm::insn::{jmp, AccessSize};
    use ebpf_vm::maps::{PerCpuArrayMap, PerfEventArray};
    use ebpf_vm::perf::PerfEvent;
    use ebpf_vm::program::{load, retcode, ProgramType};
    use ebpf_vm::{Map, MapHandle, ProgramBuilder};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::SegmentRoutingHeader;

    use seg6_core::{Nexthop, Seg6LocalAction, Verdict};
    use std::collections::HashMap;
    use std::net::Ipv6Addr;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn pinned_shards_report_their_placement() {
        let config = PoolConfig { workers: 2, pinning: PinPolicy::Compact, ..PoolConfig::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        // A flush barrier round-trips every worker, and each records its
        // placement at thread start, before its first control receive —
        // so the snapshot after the barrier is deterministic.
        let _ = pool.flush();
        let snap = pool.counters().snapshot();
        assert_eq!(snap.placement.len(), 2);
        if cfg!(target_os = "linux") {
            let cores = crate::affinity::available_cores();
            for (i, p) in snap.placement.iter().enumerate() {
                assert_eq!(p.pinned_core, Some(cores[i % cores.len()]), "shard {i} pinned compactly");
                if let Some(node) = p.numa_node {
                    assert_eq!(crate::affinity::numa_node_of_cpu(p.pinned_core.unwrap()), Some(node));
                }
            }
        } else {
            assert!(snap.placement.iter().all(|p| p.pinned_core.is_none()));
        }

        // Unpinned pools report no placement, and the default config
        // still pins nothing.
        let mut pool = WorkerPool::new(PoolConfig::default(), forwarding_datapath);
        let _ = pool.flush();
        let snap = pool.counters().snapshot();
        assert!(snap.placement.iter().all(|p| p.pinned_core.is_none() && p.numa_node.is_none()));
    }

    fn forwarding_datapath(cpu: u32) -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        dp
    }

    /// A datapath routing everything out of `oif` — tenants built from it
    /// are distinguishable by their verdicts.
    fn oif_datapath(oif: u32) -> impl Fn(u32) -> Seg6Datapath {
        move |cpu| {
            let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
            dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(oif)]);
            dp
        }
    }

    fn flow_packet(flow: u32) -> PacketBuf {
        build_ipv6_udp_packet(
            addr(&format!("2001:db8::{:x}", flow + 1)),
            addr("2001:db8:f::1"),
            (1024 + flow % 40_000) as u16,
            5001,
            &[0u8; 32],
            64,
        )
    }

    /// Satellite regression: the pool must agree with the deterministic
    /// single-thread mode — same verdicts, and per-shard results reported
    /// in shard index order no matter which shard finishes first.
    #[test]
    fn pool_flush_matches_run_once_in_shard_index_order() {
        let packets: Vec<PacketBuf> = (0..512).map(flow_packet).collect();

        let rt_config = RuntimeConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut once = Runtime::new(rt_config, forwarding_datapath);
        once.enqueue_all(packets.iter().cloned());
        let report_once = once.run_once(0);

        let config = PoolConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        assert_eq!(pool.enqueue_all(packets.iter().cloned()), 512);
        for _ in 0..5 {
            // Repeat to give out-of-order shard completions a chance to
            // show up; the report must stay identical every time.
            let report = pool.flush();
            assert_eq!(report.run, report_once);
            pool.enqueue_all(packets.iter().cloned());
        }
        pool.flush();
    }

    /// The acceptance-criteria test: a steady-state run through the
    /// persistent pool performs no thread spawns after construction —
    /// including tenant registration, which reuses the existing shards.
    #[test]
    fn pool_spawns_no_threads_after_construction() {
        let config = PoolConfig { workers: 4, batch_size: 32, ..Default::default() };
        let before_construction = thread_spawn_count();
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let after_construction = thread_spawn_count();
        assert_eq!(after_construction - before_construction, 4);

        // Registering a tenant must not spawn either.
        let tenant = pool.add_tenant(TenantSpec::build_with(oif_datapath(9)));
        assert_eq!(thread_spawn_count(), after_construction, "add_tenant must not spawn");

        // The scaling workload: many enqueue/flush rounds across tenants.
        for round in 0..10 {
            if round % 2 == 0 {
                pool.enqueue_all((0..256).map(flow_packet));
            } else {
                pool.tenant(tenant).enqueue_all((0..256).map(flow_packet));
            }
            let report = pool.flush();
            assert_eq!(report.run.processed, 256);
        }
        assert_eq!(thread_spawn_count(), after_construction, "steady state must not spawn");
        pool.shutdown();
        assert_eq!(thread_spawn_count(), after_construction, "shutdown must not spawn");

        // The spawn-per-run mode the pool replaces *does* keep spawning.
        let rt_config = RuntimeConfig { workers: 4, batch_size: 32, ..Default::default() };
        let mut rt = Runtime::new(rt_config, forwarding_datapath);
        let before = thread_spawn_count();
        for _ in 0..3 {
            rt.enqueue_all((0..64).map(flow_packet));
            rt.run_threaded(0);
        }
        assert_eq!(thread_spawn_count() - before, 3 * 4);
    }

    /// Backpressure: a full shard ring rejects deterministically. The
    /// drain daemon doubles as a worker-stall handshake so the test
    /// controls exactly when the worker consumes its ring.
    #[test]
    fn full_shard_ring_rejects_and_counts() {
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
        let config = PoolConfig { workers: 1, batch_size: 1, queue_depth: 4, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let entered_tx = entered_tx.clone();
            let release_rx = Arc::clone(&release_rx);
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
            }))
        });

        // First packet: the worker takes it off the ring, processes it
        // and blocks inside the drain.
        assert!(pool.enqueue(flow_packet(0)));
        entered_rx.recv().expect("worker entered the drain");

        // The ring now holds 0 descriptors and the worker consumes
        // nothing: the next `queue_capacity` packets fit, everything after
        // that is backpressure.
        assert_eq!(pool.queue_capacity(), 4);
        for flow in 1..=4 {
            assert!(pool.enqueue(flow_packet(flow)), "packet {flow} fits the ring");
        }
        assert!(!pool.enqueue(flow_packet(5)));
        assert!(!pool.enqueue(flow_packet(6)));
        assert_eq!(pool.rejected(), 2);
        assert_eq!(pool.shard_stats()[0], ShardStats { enqueued: 5, rejected: 2 });
        // The default tenant carries all of it — per-tenant admission
        // accounting agrees with the per-shard view.
        assert_eq!(pool.tenant_stats()[0], ShardStats { enqueued: 5, rejected: 2 });
        // The live mirrors agree with the dispatcher's view, mid-run and
        // without any barrier.
        assert_eq!(pool.counters().snapshot().shards[0].as_shard_stats(), pool.shard_stats()[0]);

        // Unblock every future drain call and let the barrier confirm that
        // accepted packets — and only those — were processed.
        drop(release_tx);
        let report = pool.flush();
        assert_eq!(report.run.processed, 5);
        assert_eq!(report.run.forwarded, 5);
    }

    /// The queue-depth satellite: a non-power-of-two depth rounds **up**,
    /// the effective capacity is exactly reachable, and the
    /// enqueued/rejected split stays exact at the boundary.
    #[test]
    fn queue_depth_rounds_up_and_boundary_accounting_is_exact() {
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
        let config = PoolConfig { workers: 1, batch_size: 1, queue_depth: 5, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let entered_tx = entered_tx.clone();
            let release_rx = Arc::clone(&release_rx);
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
            }))
        });
        assert_eq!(pool.queue_capacity(), 8, "queue_depth 5 rounds up to 8");

        // Stall the worker after packet 0, then fill the ring to *exactly*
        // its capacity: every one of the 8 must fit, the 9th must not.
        assert!(pool.enqueue(flow_packet(0)));
        entered_rx.recv().expect("worker entered the drain");
        for flow in 1..=8 {
            assert!(pool.enqueue(flow_packet(flow)), "packet {flow} of exactly capacity fits");
        }
        assert!(!pool.enqueue(flow_packet(9)), "capacity + 1 is rejected");
        assert_eq!(pool.shard_stats()[0], ShardStats { enqueued: 9, rejected: 1 });

        drop(release_tx);
        let report = pool.flush();
        assert_eq!(report.run.processed, 9, "every accepted packet, none of the rejected");
        pool.shutdown();
    }

    /// An enqueue-only caller must not strand work: when a shard's ring
    /// goes idle, whatever was dequeued is processed (and the drain daemon
    /// runs) without waiting for a flush barrier.
    #[test]
    fn idle_worker_processes_partial_batches_without_a_barrier() {
        let (drained_tx, drained_rx) = mpsc::channel::<()>();
        let config = PoolConfig { workers: 1, batch_size: 32, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let drained_tx = drained_tx.clone();
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = drained_tx.send(());
            }))
        });
        // 5 packets — far below the staging burst — and no flush call.
        for flow in 0..5 {
            assert!(pool.enqueue(flow_packet(flow)));
        }
        // The drain daemon only runs after a processed batch; its signal
        // proves the packets did not wait for a barrier.
        drained_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("idle worker processed its partial batch");
        let report = pool.flush();
        assert_eq!(report.run.processed, 5);
    }

    /// The adaptive-batching satellite: the worker consumes a backlog in
    /// occupancy-sized dequeue bursts capped at the NAPI budget, while
    /// *processing* (and the drain-daemon cadence) stays bounded by
    /// `batch_size` — so the batch count is exactly
    /// `ceil(backlog / min(batch_size, napi_budget))`, flush semantics and
    /// verdict totals are unchanged, and perf rings provisioned against
    /// `batch_size` can never overflow between drains.
    #[test]
    fn adaptive_bursts_respect_the_napi_budget_and_batch_bound() {
        const BACKLOG: u32 = 512;
        // (batch_size, napi_budget) → expected batch bound
        // min(batch_size, budget): the budget caps a poll's dequeue, the
        // batch size caps each processed (and drained) batch within it.
        for (batch_size, budget, bound) in [(32usize, 64usize, 32u64), (256, 64, 64)] {
            let (entered_tx, entered_rx) = mpsc::channel::<()>();
            let (release_tx, release_rx) = mpsc::channel::<()>();
            let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
            let config = PoolConfig {
                workers: 1,
                batch_size,
                napi_budget: budget,
                queue_depth: 2 * BACKLOG as usize,
                ..Default::default()
            };
            let mut pool = WorkerPool::new(config, move |cpu| {
                let entered_tx = entered_tx.clone();
                let release_rx = Arc::clone(&release_rx);
                ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                    let _ = entered_tx.send(());
                    let _ = release_rx.lock().unwrap().recv();
                }))
            });

            // One packet puts the worker to work; it blocks in the drain
            // after that first (1-packet) batch.
            assert!(pool.enqueue(flow_packet(0)));
            entered_rx.recv().expect("worker entered the drain");
            // Build the whole backlog while the worker is stalled, so
            // every later poll observes full occupancy deterministically.
            assert_eq!(pool.enqueue_all((1..=BACKLOG).map(flow_packet)), BACKLOG as usize);
            // Release the worker batch by batch, counting drain entries —
            // one per processed batch, so the backlog must take exactly
            // 512 / bound of them.
            for _ in 0..BACKLOG as u64 / bound {
                release_tx.send(()).expect("worker waits in the drain");
                entered_rx.recv_timeout(std::time::Duration::from_secs(10)).expect("one drain per batch");
            }
            drop(release_tx);
            let report = pool.flush();
            assert_eq!(report.run.processed, u64::from(BACKLOG) + 1, "flush semantics kept");
            let totals = pool.shutdown();
            assert_eq!(totals[0].processed, u64::from(BACKLOG) + 1);
            assert_eq!(
                totals[0].batches,
                1 + u64::from(BACKLOG) / bound,
                "batch_size {batch_size} budget {budget}: batches must be {bound}-bounded"
            );
        }
    }

    /// Tenant plumbing: descriptors stamped by a tenant handle execute on
    /// that tenant's datapath (distinguishable verdicts), outputs carry
    /// the tenant id, and the per-tenant counter rows sum to the global
    /// per-shard view.
    #[test]
    fn tenants_route_through_their_own_datapaths() {
        let config = PoolConfig { workers: 2, batch_size: 8, collect_outputs: true, ..Default::default() };
        let mut pool = WorkerPool::new(config, oif_datapath(10));
        let tenant_b = pool.add_tenant(TenantSpec::build_with(oif_datapath(20)));
        assert_eq!(pool.tenants(), 2);

        let packets: Vec<PacketBuf> = (0..64).map(flow_packet).collect();
        assert_eq!(pool.enqueue_all(packets.iter().cloned()), 64);
        assert_eq!(pool.tenant(tenant_b).enqueue_all(packets.iter().cloned()), 64);
        let mut report = pool.flush();
        let mut seen = [0u64; 2];
        for outputs in report.outputs.iter_mut() {
            for (tenant, skb, bv) in outputs.drain(..) {
                let expected_oif = if tenant == TenantId::DEFAULT { 10 } else { 20 };
                assert!(
                    matches!(bv.verdict, Verdict::Forward { oif, .. } if oif == expected_oif),
                    "tenant {tenant:?} cross-routed: {:?}",
                    bv.verdict
                );
                seen[tenant.index()] += 1;
                pool.recycle(skb.into_packet());
            }
        }
        assert_eq!(seen, [64, 64]);

        // Admission accounting: per-tenant and per-shard views agree.
        assert_eq!(pool.tenant_stats()[0], ShardStats { enqueued: 64, rejected: 0 });
        assert_eq!(pool.tenant_stats()[1], ShardStats { enqueued: 64, rejected: 0 });
        let total_enqueued: u64 = pool.shard_stats().iter().map(|s| s.enqueued).sum();
        assert_eq!(total_enqueued, 128);

        // Live counters: tenant rows sum to the aggregated shard view.
        let snap = pool.counters().snapshot();
        assert_eq!(snap.tenants.len(), 2);
        assert_eq!(snap.tenants[0].totals().processed, 64);
        assert_eq!(snap.tenants[1].totals().processed, 64);
        assert_eq!(snap.processed(), 128);
        for shard in 0..2 {
            let mut summed = crate::telemetry::ShardSnapshot::default();
            for tenant in &snap.tenants {
                summed.accumulate(&tenant.shards[shard]);
            }
            assert_eq!(summed, snap.shards[shard], "shard {shard}");
        }
        pool.shutdown();
    }

    #[test]
    fn flush_shard_reports_only_that_shard() {
        let config = PoolConfig { workers: 2, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        pool.enqueue_all((0..64).map(flow_packet));
        let enqueued: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        assert!(enqueued.iter().all(|&n| n > 0), "steering collapsed: {enqueued:?}");

        let shard0 = pool.flush_shard(0);
        assert_eq!(shard0.stats.processed, enqueued[0]);
        // The full barrier afterwards reports only what shard 0 already
        // reported as zero, plus shard 1's packets.
        let report = pool.flush();
        assert_eq!(report.run.per_worker, vec![0, enqueued[1]]);
    }

    #[test]
    fn outputs_carry_verdicts_and_rewritten_packets() {
        let config = PoolConfig { workers: 2, batch_size: 4, collect_outputs: true, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let packets: Vec<PacketBuf> = (0..32).map(flow_packet).collect();
        pool.enqueue_all(packets.iter().cloned());
        let mut report = pool.flush();
        assert_eq!(report.outputs.len(), 2);
        let total: usize = report.outputs.iter().map(Vec::len).sum();
        assert_eq!(total, 32);
        for (shard, outputs) in report.outputs.iter_mut().enumerate() {
            for (tenant, skb, bv) in outputs.drain(..) {
                assert_eq!(tenant, TenantId::DEFAULT);
                assert_eq!(pool.steer_to(skb.packet.data()) as usize, shard);
                assert!(matches!(bv.verdict, Verdict::Forward { oif: 1, .. }));
                assert_eq!(bv.work, seg6_core::WorkSummary::default());
                // The hop limit was decremented in place.
                let header = netpkt::Ipv6Header::parse(skb.packet.data()).unwrap();
                assert_eq!(header.hop_limit, 63);
                // Output buffers can be handed back to the arena.
                pool.recycle(skb.into_packet());
            }
        }
        assert_eq!(pool.buf_pool().available(), 32);
        // The next flush starts from a clean output buffer.
        pool.enqueue(flow_packet(0));
        let report = pool.flush();
        assert_eq!(report.outputs.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn shutdown_processes_the_backlog_and_reports_in_shard_order() {
        let config = PoolConfig { workers: 4, batch_size: 32, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        // 100 packets is not a multiple of the staging burst, so shards
        // hold partial bursts when the shutdown message lands.
        pool.enqueue_all((0..100).map(flow_packet));
        let enqueued: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        let totals = pool.shutdown();
        assert_eq!(totals.len(), 4);
        for (shard, (stats, expected)) in totals.iter().zip(enqueued).enumerate() {
            assert_eq!(stats.steered, expected, "shard {shard} consumed its ring");
            assert_eq!(stats.processed, expected, "shard {shard} processed its backlog");
        }
        assert_eq!(totals.iter().map(|s| s.processed).sum::<u64>(), 100);
    }

    /// Live telemetry satellite: at every quiet point (after a flush
    /// barrier), the barrier-free counter snapshot agrees exactly with the
    /// dispatcher's stats and the accumulated flush deltas — and reading
    /// it mid-run needs no barrier at all.
    #[test]
    fn live_counters_agree_with_flush_totals() {
        let config = PoolConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let counters = pool.counters();
        let mut flushed = RunReport::default();
        for round in 1..=3u64 {
            pool.enqueue_all((0..256).map(flow_packet));
            // A mid-traffic sample must be readable without a barrier and
            // never exceed what was enqueued.
            let live = counters.snapshot();
            assert!(live.processed() <= live.enqueued());
            let report = pool.flush();
            flushed.processed += report.run.processed;
            flushed.forwarded += report.run.forwarded;

            let quiet = counters.snapshot();
            assert_eq!(quiet.enqueued(), 256 * round);
            assert_eq!(quiet.processed(), flushed.processed);
            assert_eq!(quiet.forwarded(), flushed.forwarded);
            assert_eq!(quiet.in_flight(), 0);
            for (shard, sample) in quiet.shards.iter().enumerate() {
                assert_eq!(sample.as_shard_stats(), pool.shard_stats()[shard], "shard {shard}");
            }
        }
        // Counters survive (and stay exact across) shutdown.
        let totals = pool.shutdown();
        let after = counters.snapshot();
        assert_eq!(after.processed(), totals.iter().map(|s| s.processed).sum::<u64>());
    }

    /// Recycling satellite: byte-slice ingestion reuses worker-returned
    /// buffers — after warm-up, whole rounds run without the arena
    /// allocating a single fresh buffer.
    #[test]
    fn bytes_ingestion_recycles_buffers_between_rounds() {
        let config = PoolConfig { workers: 2, batch_size: 8, queue_depth: 512, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let frames: Vec<PacketBuf> = (0..128).map(flow_packet).collect();
        let frames: Vec<&[u8]> = frames.iter().map(|p| p.data()).collect();

        // Warm-up: the first rounds mint fresh buffers.
        for _ in 0..2 {
            assert_eq!(pool.enqueue_bytes_all(0, frames.iter().copied()), 128);
            assert_eq!(pool.flush().run.processed, 128);
        }
        // The first bytes-path use provisioned the arena to the pool's
        // in-flight bound, so the mint count is paid once — and staying
        // flat is deterministic, not scheduling-dependent.
        let minted = pool.buf_pool().allocations();
        assert!(minted > 0, "first bytes-path use provisioned the arena");

        // Steady state: every round is served from recycled storage.
        for round in 0..4 {
            assert_eq!(pool.enqueue_bytes_all(0, frames.iter().copied()), 128);
            assert_eq!(pool.flush().run.processed, 128);
            assert_eq!(
                pool.buf_pool().allocations(),
                minted,
                "round {round} minted fresh buffers instead of recycling"
            );
        }
        assert!(pool.buf_pool().recycle_hits() >= 4 * 128);
        // The workers' side of the loop is visible in the live counters.
        assert!(pool.counters().snapshot().recycled() >= 4 * 128);
        // Verdicts are identical to the owned-buffer path.
        let mut once = Runtime::new(
            RuntimeConfig { workers: 2, batch_size: 8, ..Default::default() },
            forwarding_datapath,
        );
        once.enqueue_all((0..128).map(flow_packet));
        let report_once = once.run_once(0);
        pool.enqueue_bytes_all(0, frames.iter().copied());
        assert_eq!(pool.flush().run, report_once);
    }

    /// An `End.BPF` program that bumps this CPU's slot of the per-CPU
    /// array at fd 1, then emits the new count through
    /// `bpf_perf_event_output(..., BPF_F_CURRENT_CPU, ...)` into the perf
    /// array at fd 2, then forwards.
    fn emitting_program() -> ebpf_vm::Program {
        let mut b = ProgramBuilder::new();
        b.mov_reg(9, 1); // save ctx
        b.store_imm(AccessSize::Word, 10, -4, 0);
        b.load_map_fd(1, 1);
        b.mov_reg(2, 10);
        b.add_imm(2, -4);
        b.call(ids::MAP_LOOKUP_ELEM);
        b.jmp_imm(jmp::JEQ, 0, 0, "out");
        b.load_mem(AccessSize::Double, 1, 0, 0);
        b.add_imm(1, 1);
        b.store_mem(AccessSize::Double, 0, 1, 0);
        // Stash the fresh per-CPU sequence number and emit it.
        b.store_mem(AccessSize::Double, 10, 1, -16);
        b.mov_reg(1, 9);
        b.load_map_fd(2, 2);
        b.load_imm64(3, 0xffff_ffff); // BPF_F_CURRENT_CPU, zero-extended
        b.mov_reg(4, 10);
        b.add_imm(4, -16);
        b.mov_imm(5, 8);
        b.call(ids::PERF_EVENT_OUTPUT);
        b.label("out");
        b.ret(retcode::BPF_OK as i32);
        b.build_program("emit-seq", ProgramType::LwtSeg6Local).expect("static program")
    }

    /// Satellite coverage: perf events emitted with `BPF_F_CURRENT_CPU`
    /// from every shard are all collected by the per-worker drain daemons
    /// — none lost (including events of the final partial batch, drained
    /// at shutdown), none duplicated.
    #[test]
    fn per_cpu_perf_events_survive_pool_shutdown_exactly_once() {
        const WORKERS: u32 = 4;
        const PACKETS: u32 = 403; // deliberately not a batch multiple
        let sid = addr("fc00::e1");
        let counter: MapHandle = PerCpuArrayMap::new(8, 1, WORKERS);
        let perf = PerfEventArray::per_cpu(PACKETS as usize, WORKERS);
        let ring = perf.perf_buffer().expect("perf array has a buffer");
        let collected: Arc<std::sync::Mutex<Vec<PerfEvent>>> = Arc::new(std::sync::Mutex::new(Vec::new()));

        let config = PoolConfig { workers: WORKERS, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, |cpu| {
            let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
            dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(1)]);
            let mut maps: HashMap<u32, MapHandle> = HashMap::new();
            maps.insert(1, Arc::clone(&counter));
            maps.insert(2, perf.clone());
            let prog = load(emitting_program(), &maps, &dp.helpers).expect("verified program");
            dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), Seg6LocalAction::EndBpf { prog });
            let ring = Arc::clone(&ring);
            let collected = Arc::clone(&collected);
            ShardSetup::new(dp).with_drain(Box::new(move |cpu| {
                // Each shard's daemon drains only its own ring.
                ring.take_cpu(cpu, &mut collected.lock().unwrap());
            }))
        });

        for flow in 0..PACKETS {
            let srh = SegmentRoutingHeader::from_path(proto::UDP, &[sid, addr("fc00::99")]);
            let pkt = build_srv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                &srh,
                (1000 + flow) as u16,
                5001,
                &[0u8; 16],
                64,
            );
            assert!(pool.enqueue(pkt));
        }
        let per_shard: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        let totals = pool.shutdown();
        assert_eq!(totals.iter().map(|s| s.processed).sum::<u64>(), u64::from(PACKETS));

        // Every ring is empty — the daemons took everything before exit.
        assert!(ring.is_empty(), "events stranded in a ring");
        assert_eq!(ring.dropped(), 0);

        // All events collected, exactly once: per shard, the sequence
        // numbers are 1..=n with no gap or repeat.
        let collected = collected.lock().unwrap();
        assert_eq!(collected.len(), PACKETS as usize);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); WORKERS as usize];
        for event in collected.iter() {
            let seq = u64::from_le_bytes(event.data.as_slice().try_into().expect("8-byte event"));
            seqs[event.cpu as usize].push(seq);
        }
        for (cpu, mut shard_seqs) in seqs.into_iter().enumerate() {
            shard_seqs.sort_unstable();
            let expected: Vec<u64> = (1..=per_shard[cpu]).collect();
            assert_eq!(shard_seqs, expected, "shard {cpu} events lost or duplicated");
            assert!(!expected.is_empty(), "shard {cpu} saw no traffic — steering collapsed");
        }
    }
}
