//! The persistent worker pool: long-lived shard threads fed over bounded
//! channels.
//!
//! [`Runtime::run_threaded`](crate::Runtime::run_threaded) pays one OS
//! thread spawn per shard on *every* call — fine for a one-shot benchmark,
//! fatal for a steady-state datapath. Kernel datapaths (and the paper's
//! End.BPF deployment) instead keep one long-lived worker per receive
//! queue: the NIC steers flows to queues with RSS, each queue's CPU runs
//! forever, and user space only observes counters. This module reproduces
//! that lifecycle:
//!
//! * [`WorkerPool::new`] spawns N shard threads **once**; each thread owns
//!   its [`Seg6Datapath`] (its program instances, its `cpu_id`) for the
//!   pool's whole life. The crate-level
//!   [`thread_spawn_count`](crate::thread_spawn_count) hook lets tests
//!   assert that the steady state spawns nothing.
//! * The dispatcher steers packets by RSS flow hash and hands them to the
//!   shard over a **bounded channel** ([`WorkerPool::enqueue`]). A full
//!   queue rejects the packet and counts it ([`ShardStats::rejected`]) —
//!   backpressure behaves like a NIC dropping on a full RX ring, it never
//!   blocks the dispatcher.
//! * Workers accumulate packets into batches of
//!   [`PoolConfig::batch_size`] and run them through
//!   [`Seg6Datapath::process_batch_verdicts`]; when a channel goes idle
//!   the partial batch is processed immediately (batching amortises
//!   bursts, it never delays a lull's packets). After every batch the
//!   shard's optional **drain daemon** runs ([`BatchDrain`]) — the hook
//!   per-CPU perf-ring consumers (`DelayCollector` and friends) attach to,
//!   so events are pulled on the worker, batch by batch, instead of by a
//!   remote poller racing the producer.
//! * [`WorkerPool::flush`] is a barrier: every shard finishes what it was
//!   handed before the barrier message and reports. Results come back **in
//!   shard index order**, so a flush is as deterministic as
//!   [`Runtime::run_once`](crate::Runtime::run_once) modulo per-shard
//!   interleaving — and verdict-identical to it for the same packets.
//! * Dropping or [`WorkerPool::shutdown`]ting the pool delivers a shutdown
//!   message, lets every worker finish its backlog, runs the final drain,
//!   and joins the threads. No packet or perf event is stranded.

use crate::{count_thread_spawn, RunReport, WorkerStats, MAX_WORKERS};
use netpkt::flow::{rss_hash_packet, rss_hash_packet_symmetric, steer};
use netpkt::PacketBuf;
use seg6_core::{BatchVerdict, Seg6Datapath, Skb};
use std::sync::mpsc::{channel, sync_channel};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::thread::JoinHandle;

/// A per-shard drain daemon: called on the worker thread after every
/// processed batch (and one final time at shutdown) with the shard's CPU
/// id. The canonical implementation drains the shard's per-CPU perf ring
/// into a collector — see `srv6_nf::daemons::DelayCollector::shard_drain`.
pub type BatchDrain = Box<dyn FnMut(u32) + Send>;

/// What one worker shard is built from: its private datapath and an
/// optional per-batch drain daemon.
pub struct ShardSetup {
    /// The shard's datapath (the pool pins it to the shard's CPU id).
    pub datapath: Seg6Datapath,
    /// Drain daemon run after every batch on this shard, if any.
    pub drain: Option<BatchDrain>,
}

impl ShardSetup {
    /// A shard with a datapath and no drain daemon.
    pub fn new(datapath: Seg6Datapath) -> Self {
        ShardSetup { datapath, drain: None }
    }

    /// Attaches a per-batch drain daemon (builder form).
    pub fn with_drain(mut self, drain: BatchDrain) -> Self {
        self.drain = Some(drain);
        self
    }
}

impl From<Seg6Datapath> for ShardSetup {
    fn from(datapath: Seg6Datapath) -> Self {
        ShardSetup::new(datapath)
    }
}

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker shards (receive queues). Clamped to
    /// `1..=`[`MAX_WORKERS`].
    pub workers: u32,
    /// Packets a worker accumulates before running
    /// [`Seg6Datapath::process_batch_verdicts`]. A flush or shutdown
    /// message always processes the partial batch first.
    pub batch_size: usize,
    /// Capacity of each shard's bounded input channel, in packets. An
    /// enqueue onto a full channel is rejected and counted — the pool's
    /// backpressure signal.
    pub queue_depth: usize,
    /// Steer with the symmetric flow hash, keeping both directions of a
    /// flow on one worker.
    pub symmetric_steering: bool,
    /// Retain each processed packet and its [`BatchVerdict`] so
    /// [`WorkerPool::flush`] can return them. Costs one buffered `Skb` per
    /// packet per flush window; leave off for counter-only workloads.
    pub collect_outputs: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 1,
            batch_size: 32,
            queue_depth: 1024,
            symmetric_steering: false,
            collect_outputs: false,
        }
    }
}

/// Counters of one pool shard, as visible to the dispatcher.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Packets accepted into the shard's channel.
    pub enqueued: u64,
    /// Packets rejected because the channel was full (backpressure).
    pub rejected: u64,
}

/// What one shard reports at a flush barrier: its counter deltas since the
/// previous flush, plus the processed packets when
/// [`PoolConfig::collect_outputs`] is on.
pub struct ShardFlush {
    /// Verdict/batch counter deltas since the last flush.
    pub stats: WorkerStats,
    /// The packets processed since the last flush, with their verdicts, in
    /// processing order. Empty unless [`PoolConfig::collect_outputs`].
    pub outputs: Vec<(Skb, BatchVerdict)>,
}

/// Aggregate result of one [`WorkerPool::flush`] barrier.
pub struct PoolReport {
    /// Aggregated verdict counters since the previous flush, with
    /// `per_worker` in shard index order.
    pub run: RunReport,
    /// Per-shard outputs, indexed by shard id. Inner vectors are empty
    /// unless [`PoolConfig::collect_outputs`] is set.
    pub outputs: Vec<Vec<(Skb, BatchVerdict)>>,
}

enum Msg {
    /// A packet, stamped with the dispatcher's clock at enqueue time.
    Packet { skb: Skb, now_ns: u64 },
    /// Barrier: finish everything enqueued before this message and report.
    Flush(Sender<ShardFlush>),
    /// Finish the backlog, run the final drain, exit.
    Shutdown,
}

/// The persistent worker pool. See the [module docs](self) for the
/// lifecycle.
pub struct WorkerPool {
    config: PoolConfig,
    senders: Vec<SyncSender<Msg>>,
    handles: Vec<JoinHandle<WorkerStats>>,
    stats: Vec<ShardStats>,
}

impl WorkerPool {
    /// Spawns the pool. `builder` runs once per shard, on the calling
    /// thread, with the shard's CPU id; the [`ShardSetup`] it returns (a
    /// bare [`Seg6Datapath`] converts) is moved onto that shard's thread,
    /// where it lives until shutdown. These construction-time spawns are
    /// the only ones the pool ever performs.
    pub fn new<S: Into<ShardSetup>>(config: PoolConfig, mut builder: impl FnMut(u32) -> S) -> Self {
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let config = PoolConfig { workers, ..config };
        let mut senders = Vec::with_capacity(workers as usize);
        let mut handles = Vec::with_capacity(workers as usize);
        for id in 0..workers {
            let setup: ShardSetup = builder(id).into();
            let mut datapath = setup.datapath;
            datapath.cpu_id = id;
            let drain = setup.drain;
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            count_thread_spawn();
            let handle = std::thread::Builder::new()
                .name(format!("seg6-worker-{id}"))
                .spawn(move || worker_loop(config, rx, datapath, drain))
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { config, senders, handles, stats: vec![ShardStats::default(); workers as usize] }
    }

    /// Builds a pool whose shard `q` runs [`Seg6Datapath::fork_for_cpu`]
    /// of `datapath` — the shape simnet uses to put one configured node
    /// datapath on every receive queue.
    pub fn from_datapath(config: PoolConfig, datapath: &Seg6Datapath) -> Self {
        WorkerPool::new(config, |cpu| datapath.fork_for_cpu(cpu))
    }

    /// The pool's configuration (with the worker count clamped).
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Number of worker shards.
    pub fn workers(&self) -> u32 {
        self.config.workers
    }

    /// Dispatcher-side counters, indexed by shard id.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Total packets rejected by full shard channels (backpressure).
    pub fn rejected(&self) -> u64 {
        self.stats.iter().map(|s| s.rejected).sum()
    }

    /// The shard a packet steers to, without enqueueing it. Identical
    /// steering to [`Runtime`](crate::Runtime) and to simnet's per-node
    /// RSS model: the Toeplitz hash of the 5-tuple, modulo the shard
    /// count.
    pub fn steer_to(&self, packet: &[u8]) -> u32 {
        let hash = if self.config.symmetric_steering {
            rss_hash_packet_symmetric(packet)
        } else {
            rss_hash_packet(packet)
        };
        steer(hash, self.senders.len()) as u32
    }

    /// Steers `packet` to its shard and enqueues it with clock `now_ns`
    /// (the packet's RX timestamp, and the time its batch will be
    /// processed at). Returns `false` — counting the rejection — when the
    /// shard's channel is full.
    pub fn enqueue_at(&mut self, now_ns: u64, packet: PacketBuf) -> bool {
        let shard = self.steer_to(packet.data()) as usize;
        let skb = Skb::received(packet, now_ns, 0);
        match self.senders[shard].try_send(Msg::Packet { skb, now_ns }) {
            Ok(()) => {
                self.stats[shard].enqueued += 1;
                true
            }
            // Disconnected can only mean the worker died (a panic inside a
            // program); account the packet as rejected rather than
            // propagating mid-enqueue — the next flush will surface the
            // dead worker.
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.stats[shard].rejected += 1;
                false
            }
        }
    }

    /// [`WorkerPool::enqueue_at`] with clock 0 (benchmarks and tests that
    /// do not model time).
    pub fn enqueue(&mut self, packet: PacketBuf) -> bool {
        self.enqueue_at(0, packet)
    }

    /// Enqueues a collection of packets, returning how many were accepted.
    pub fn enqueue_all(&mut self, packets: impl IntoIterator<Item = PacketBuf>) -> usize {
        packets.into_iter().map(|p| usize::from(self.enqueue(p))).sum()
    }

    /// Barrier: waits until every shard has processed everything enqueued
    /// before this call, and returns the counter deltas (and outputs, when
    /// collected) since the previous flush — always in shard index order,
    /// regardless of which shard finished first.
    pub fn flush(&mut self) -> PoolReport {
        // Hand every shard its barrier first, then collect in index order:
        // the shards drain concurrently, the ordering is imposed only on
        // the collection side.
        let replies: Vec<Receiver<ShardFlush>> = self
            .senders
            .iter()
            .map(|sender| {
                let (tx, rx) = channel();
                // A blocking send is deliberate: the barrier must get into
                // the (bounded) channel even when it is briefly full — the
                // worker is draining it, so space always appears.
                sender.send(Msg::Flush(tx)).expect("worker alive");
                rx
            })
            .collect();
        let mut deltas = Vec::with_capacity(replies.len());
        let mut outputs = Vec::with_capacity(replies.len());
        for reply in replies {
            let flush = reply.recv().expect("worker answers the barrier");
            deltas.push(flush.stats);
            outputs.push(flush.outputs);
        }
        PoolReport { run: RunReport::from_deltas(&deltas), outputs }
    }

    /// Single-shard barrier: like [`WorkerPool::flush`], but only shard
    /// `shard` is flushed and reported — one reply channel, one
    /// round-trip. This is what per-event consumers (the simulator feeds
    /// one packet to one shard per arrival) use instead of paying a
    /// whole-pool barrier.
    pub fn flush_shard(&mut self, shard: u32) -> ShardFlush {
        let (tx, rx) = channel();
        self.senders[shard as usize].send(Msg::Flush(tx)).expect("worker alive");
        rx.recv().expect("worker answers the barrier")
    }

    /// Graceful shutdown: every worker finishes its backlog, runs its
    /// final drain, and exits; the threads are joined. Returns each
    /// shard's lifetime totals, in shard index order. Dropping the pool
    /// does the same, minus the report.
    pub fn shutdown(mut self) -> Vec<WorkerStats> {
        self.stop();
        self.handles.drain(..).map(|h| h.join().expect("worker thread panicked")).collect()
    }

    fn stop(&mut self) {
        for sender in self.senders.drain(..) {
            // As with flush: block until the shutdown message fits.
            let _ = sender.send(Msg::Shutdown);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The state one shard thread owns for its whole life. The batch, verdict
/// and output buffers are reused across batches: after the first batch
/// warms them up, the shard's steady state performs zero heap allocations
/// per packet (the `alloc-counter` test feature proves it).
struct ShardState {
    datapath: Seg6Datapath,
    batch: Vec<Skb>,
    stats: WorkerStats,
    outputs: Vec<(Skb, BatchVerdict)>,
    verdicts: Vec<BatchVerdict>,
    drain: Option<BatchDrain>,
}

/// One shard's thread body: receive, batch, process, drain, report.
fn worker_loop(
    config: PoolConfig,
    rx: Receiver<Msg>,
    datapath: Seg6Datapath,
    drain: Option<BatchDrain>,
) -> WorkerStats {
    let batch_size = config.batch_size.max(1);
    let mut shard = ShardState {
        datapath,
        batch: Vec::with_capacity(batch_size),
        stats: WorkerStats::default(),
        outputs: Vec::new(),
        verdicts: Vec::with_capacity(batch_size),
        drain,
    };
    let mut reported = WorkerStats::default();
    let mut clock: u64 = 0;
    loop {
        // Block for the next message; the worker is otherwise idle.
        let Ok(msg) = rx.recv() else { break };
        let mut next = Some(msg);
        while let Some(msg) = next.take() {
            match msg {
                Msg::Packet { skb, now_ns } => {
                    shard.stats.steered += 1;
                    clock = clock.max(now_ns);
                    shard.batch.push(skb);
                    if shard.batch.len() >= batch_size {
                        run_batch(&mut shard, clock, &config);
                    }
                    // Opportunistically pull whatever else is already
                    // queued. When the channel goes idle, process the
                    // partial batch instead of holding it while blocked —
                    // NAPI-style: batching amortises bursts, it never
                    // delays a lull's packets until the next barrier.
                    match rx.try_recv() {
                        Ok(more) => next = Some(more),
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {
                            if !shard.batch.is_empty() {
                                run_batch(&mut shard, clock, &config);
                            }
                        }
                    }
                }
                Msg::Flush(reply) => {
                    run_batch(&mut shard, clock, &config);
                    let delta = crate::delta(reported, shard.stats);
                    reported = shard.stats;
                    let _ =
                        reply.send(ShardFlush { stats: delta, outputs: std::mem::take(&mut shard.outputs) });
                }
                Msg::Shutdown => {
                    // Final partial batch + final drain, so no packet or
                    // perf event is stranded.
                    run_batch(&mut shard, clock, &config);
                    return shard.stats;
                }
            }
        }
    }
    // Dispatcher vanished without an explicit shutdown (pool dropped
    // mid-panic): still finish the backlog and the final drain.
    run_batch(&mut shard, clock, &config);
    shard.stats
}

/// Processes the accumulated batch (if any) and runs the drain daemon.
fn run_batch(shard: &mut ShardState, clock: u64, config: &PoolConfig) {
    if !shard.batch.is_empty() {
        // The verdict buffer is shard-owned and reused: no allocation per
        // batch, no allocation per packet.
        shard.verdicts.clear();
        shard.datapath.process_batch_verdicts_into(&mut shard.batch, clock, &mut shard.verdicts);
        for bv in &shard.verdicts {
            shard.stats.processed += 1;
            match bv.verdict {
                seg6_core::Verdict::Forward { .. } => shard.stats.forwarded += 1,
                seg6_core::Verdict::LocalDeliver => shard.stats.local_delivered += 1,
                seg6_core::Verdict::Drop(_) => shard.stats.dropped += 1,
            }
        }
        shard.stats.batches += 1;
        if config.collect_outputs {
            shard.outputs.extend(shard.batch.drain(..).zip(shard.verdicts.drain(..)));
        } else {
            shard.batch.clear();
        }
    }
    // The drain daemon runs batch-aware: after the batch's events are in
    // the ring, on the worker that produced them.
    if let Some(drain) = &mut shard.drain {
        drain(shard.datapath.cpu_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{thread_spawn_count, Runtime, RuntimeConfig};
    use ebpf_vm::helpers::ids;
    use ebpf_vm::insn::{jmp, AccessSize};
    use ebpf_vm::maps::{PerCpuArrayMap, PerfEventArray};
    use ebpf_vm::perf::PerfEvent;
    use ebpf_vm::program::{load, retcode, ProgramType};
    use ebpf_vm::{Map, MapHandle, ProgramBuilder};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::SegmentRoutingHeader;

    use seg6_core::{Nexthop, Seg6LocalAction, Verdict};
    use std::collections::HashMap;
    use std::net::Ipv6Addr;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn forwarding_datapath(cpu: u32) -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        dp
    }

    fn flow_packet(flow: u32) -> PacketBuf {
        build_ipv6_udp_packet(
            addr(&format!("2001:db8::{:x}", flow + 1)),
            addr("2001:db8:f::1"),
            (1024 + flow % 40_000) as u16,
            5001,
            &[0u8; 32],
            64,
        )
    }

    /// Satellite regression: the pool must agree with the deterministic
    /// single-thread mode — same verdicts, and per-shard results reported
    /// in shard index order no matter which shard finishes first.
    #[test]
    fn pool_flush_matches_run_once_in_shard_index_order() {
        let packets: Vec<PacketBuf> = (0..512).map(flow_packet).collect();

        let rt_config = RuntimeConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut once = Runtime::new(rt_config, forwarding_datapath);
        once.enqueue_all(packets.iter().cloned());
        let report_once = once.run_once(0);

        let config = PoolConfig { workers: 4, batch_size: 16, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        assert_eq!(pool.enqueue_all(packets.iter().cloned()), 512);
        for _ in 0..5 {
            // Repeat to give out-of-order shard completions a chance to
            // show up; the report must stay identical every time.
            let report = pool.flush();
            assert_eq!(report.run, report_once);
            pool.enqueue_all(packets.iter().cloned());
        }
        pool.flush();
    }

    /// The acceptance-criteria test: a steady-state run through the
    /// persistent pool performs no thread spawns after construction.
    #[test]
    fn pool_spawns_no_threads_after_construction() {
        let config = PoolConfig { workers: 4, batch_size: 32, ..Default::default() };
        let before_construction = thread_spawn_count();
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let after_construction = thread_spawn_count();
        assert_eq!(after_construction - before_construction, 4);

        // The scaling workload: many enqueue/flush rounds.
        for _ in 0..10 {
            pool.enqueue_all((0..256).map(flow_packet));
            let report = pool.flush();
            assert_eq!(report.run.processed, 256);
        }
        assert_eq!(thread_spawn_count(), after_construction, "steady state must not spawn");
        pool.shutdown();
        assert_eq!(thread_spawn_count(), after_construction, "shutdown must not spawn");

        // The spawn-per-run mode the pool replaces *does* keep spawning.
        let rt_config = RuntimeConfig { workers: 4, batch_size: 32, ..Default::default() };
        let mut rt = Runtime::new(rt_config, forwarding_datapath);
        let before = thread_spawn_count();
        for _ in 0..3 {
            rt.enqueue_all((0..64).map(flow_packet));
            rt.run_threaded(0);
        }
        assert_eq!(thread_spawn_count() - before, 3 * 4);
    }

    /// Backpressure: a full shard channel rejects deterministically. The
    /// drain daemon doubles as a worker-stall handshake so the test
    /// controls exactly when the worker consumes its queue.
    #[test]
    fn full_shard_channel_rejects_and_counts() {
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
        let config = PoolConfig { workers: 1, batch_size: 1, queue_depth: 4, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let entered_tx = entered_tx.clone();
            let release_rx = Arc::clone(&release_rx);
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
            }))
        });

        // First packet: the worker takes it off the channel, processes it
        // (batch size 1) and blocks inside the drain.
        assert!(pool.enqueue(flow_packet(0)));
        entered_rx.recv().expect("worker entered the drain");

        // The channel now holds 0 messages and the worker consumes
        // nothing: the next `queue_depth` packets fit, everything after
        // that is backpressure.
        for flow in 1..=4 {
            assert!(pool.enqueue(flow_packet(flow)), "packet {flow} fits the queue");
        }
        assert!(!pool.enqueue(flow_packet(5)));
        assert!(!pool.enqueue(flow_packet(6)));
        assert_eq!(pool.rejected(), 2);
        assert_eq!(pool.shard_stats()[0], ShardStats { enqueued: 5, rejected: 2 });

        // Unblock every future drain call and let the barrier confirm that
        // accepted packets — and only those — were processed.
        drop(release_tx);
        let report = pool.flush();
        assert_eq!(report.run.processed, 5);
        assert_eq!(report.run.forwarded, 5);
    }

    /// An enqueue-only caller must not strand work: when a shard's channel
    /// goes idle, the partial batch is processed (and the drain daemon
    /// runs) without waiting for a flush barrier.
    #[test]
    fn idle_worker_processes_partial_batches_without_a_barrier() {
        let (drained_tx, drained_rx) = mpsc::channel::<()>();
        let config = PoolConfig { workers: 1, batch_size: 32, ..Default::default() };
        let mut pool = WorkerPool::new(config, move |cpu| {
            let drained_tx = drained_tx.clone();
            ShardSetup::new(forwarding_datapath(cpu)).with_drain(Box::new(move |_| {
                let _ = drained_tx.send(());
            }))
        });
        // 5 packets — far below batch_size — and no flush call.
        for flow in 0..5 {
            assert!(pool.enqueue(flow_packet(flow)));
        }
        // The drain daemon only runs after a processed batch; its signal
        // proves the partial batch did not wait for a barrier.
        drained_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("idle worker processed its partial batch");
        let report = pool.flush();
        assert_eq!(report.run.processed, 5);
    }

    #[test]
    fn flush_shard_reports_only_that_shard() {
        let config = PoolConfig { workers: 2, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        pool.enqueue_all((0..64).map(flow_packet));
        let enqueued: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        assert!(enqueued.iter().all(|&n| n > 0), "steering collapsed: {enqueued:?}");

        let shard0 = pool.flush_shard(0);
        assert_eq!(shard0.stats.processed, enqueued[0]);
        // The full barrier afterwards reports only what shard 0 already
        // reported as zero, plus shard 1's packets.
        let report = pool.flush();
        assert_eq!(report.run.per_worker, vec![0, enqueued[1]]);
    }

    #[test]
    fn outputs_carry_verdicts_and_rewritten_packets() {
        let config = PoolConfig { workers: 2, batch_size: 4, collect_outputs: true, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        let packets: Vec<PacketBuf> = (0..32).map(flow_packet).collect();
        pool.enqueue_all(packets.iter().cloned());
        let mut report = pool.flush();
        assert_eq!(report.outputs.len(), 2);
        let total: usize = report.outputs.iter().map(Vec::len).sum();
        assert_eq!(total, 32);
        for (shard, outputs) in report.outputs.iter_mut().enumerate() {
            for (skb, bv) in outputs.drain(..) {
                assert_eq!(pool.steer_to(skb.packet.data()) as usize, shard);
                assert!(matches!(bv.verdict, Verdict::Forward { oif: 1, .. }));
                assert_eq!(bv.work, seg6_core::WorkSummary::default());
                // The hop limit was decremented in place.
                let header = netpkt::Ipv6Header::parse(skb.packet.data()).unwrap();
                assert_eq!(header.hop_limit, 63);
            }
        }
        // The next flush starts from a clean output buffer.
        pool.enqueue(flow_packet(0));
        let report = pool.flush();
        assert_eq!(report.outputs.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn shutdown_processes_the_backlog_and_reports_in_shard_order() {
        let config = PoolConfig { workers: 4, batch_size: 32, ..Default::default() };
        let mut pool = WorkerPool::new(config, forwarding_datapath);
        // 100 packets is not a multiple of the batch size, so shards hold
        // partial batches when the shutdown message lands.
        pool.enqueue_all((0..100).map(flow_packet));
        let enqueued: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        let totals = pool.shutdown();
        assert_eq!(totals.len(), 4);
        for (shard, (stats, expected)) in totals.iter().zip(enqueued).enumerate() {
            assert_eq!(stats.steered, expected, "shard {shard} consumed its queue");
            assert_eq!(stats.processed, expected, "shard {shard} processed its backlog");
        }
        assert_eq!(totals.iter().map(|s| s.processed).sum::<u64>(), 100);
    }

    /// An `End.BPF` program that bumps this CPU's slot of the per-CPU
    /// array at fd 1, then emits the new count through
    /// `bpf_perf_event_output(..., BPF_F_CURRENT_CPU, ...)` into the perf
    /// array at fd 2, then forwards.
    fn emitting_program() -> ebpf_vm::Program {
        let mut b = ProgramBuilder::new();
        b.mov_reg(9, 1); // save ctx
        b.store_imm(AccessSize::Word, 10, -4, 0);
        b.load_map_fd(1, 1);
        b.mov_reg(2, 10);
        b.add_imm(2, -4);
        b.call(ids::MAP_LOOKUP_ELEM);
        b.jmp_imm(jmp::JEQ, 0, 0, "out");
        b.load_mem(AccessSize::Double, 1, 0, 0);
        b.add_imm(1, 1);
        b.store_mem(AccessSize::Double, 0, 1, 0);
        // Stash the fresh per-CPU sequence number and emit it.
        b.store_mem(AccessSize::Double, 10, 1, -16);
        b.mov_reg(1, 9);
        b.load_map_fd(2, 2);
        b.load_imm64(3, 0xffff_ffff); // BPF_F_CURRENT_CPU, zero-extended
        b.mov_reg(4, 10);
        b.add_imm(4, -16);
        b.mov_imm(5, 8);
        b.call(ids::PERF_EVENT_OUTPUT);
        b.label("out");
        b.ret(retcode::BPF_OK as i32);
        b.build_program("emit-seq", ProgramType::LwtSeg6Local).expect("static program")
    }

    /// Satellite coverage: perf events emitted with `BPF_F_CURRENT_CPU`
    /// from every shard are all collected by the per-worker drain daemons
    /// — none lost (including events of the final partial batch, drained
    /// at shutdown), none duplicated.
    #[test]
    fn per_cpu_perf_events_survive_pool_shutdown_exactly_once() {
        const WORKERS: u32 = 4;
        const PACKETS: u32 = 403; // deliberately not a batch multiple
        let sid = addr("fc00::e1");
        let counter: MapHandle = PerCpuArrayMap::new(8, 1, WORKERS);
        let perf = PerfEventArray::per_cpu(PACKETS as usize, WORKERS);
        let ring = perf.perf_buffer().expect("perf array has a buffer");
        let collected: Arc<std::sync::Mutex<Vec<PerfEvent>>> = Arc::new(std::sync::Mutex::new(Vec::new()));

        let config = PoolConfig { workers: WORKERS, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, |cpu| {
            let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
            dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(1)]);
            let mut maps: HashMap<u32, MapHandle> = HashMap::new();
            maps.insert(1, Arc::clone(&counter));
            maps.insert(2, perf.clone());
            let prog = load(emitting_program(), &maps, &dp.helpers).expect("verified program");
            dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), Seg6LocalAction::EndBpf { prog, use_jit: true });
            let ring = Arc::clone(&ring);
            let collected = Arc::clone(&collected);
            ShardSetup::new(dp).with_drain(Box::new(move |cpu| {
                // Each shard's daemon drains only its own ring.
                ring.take_cpu(cpu, &mut collected.lock().unwrap());
            }))
        });

        for flow in 0..PACKETS {
            let srh = SegmentRoutingHeader::from_path(proto::UDP, &[sid, addr("fc00::99")]);
            let pkt = build_srv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                &srh,
                (1000 + flow) as u16,
                5001,
                &[0u8; 16],
                64,
            );
            assert!(pool.enqueue(pkt));
        }
        let per_shard: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        let totals = pool.shutdown();
        assert_eq!(totals.iter().map(|s| s.processed).sum::<u64>(), u64::from(PACKETS));

        // Every ring is empty — the daemons took everything before exit.
        assert!(ring.is_empty(), "events stranded in a ring");
        assert_eq!(ring.dropped(), 0);

        // All events collected, exactly once: per shard, the sequence
        // numbers are 1..=n with no gap or repeat.
        let collected = collected.lock().unwrap();
        assert_eq!(collected.len(), PACKETS as usize);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); WORKERS as usize];
        for event in collected.iter() {
            let seq = u64::from_le_bytes(event.data.as_slice().try_into().expect("8-byte event"));
            seqs[event.cpu as usize].push(seq);
        }
        for (cpu, mut shard_seqs) in seqs.into_iter().enumerate() {
            shard_seqs.sort_unstable();
            let expected: Vec<u64> = (1..=per_shard[cpu]).collect();
            assert_eq!(shard_seqs, expected, "shard {cpu} events lost or duplicated");
            assert!(!expected.is_empty(), "shard {cpu} saw no traffic — steering collapsed");
        }
    }
}
