//! Lock-free single-producer/single-consumer descriptor rings.
//!
//! The worker pool's ingestion path is one dispatcher thread feeding N
//! worker shards — N independent SPSC channels. `std::sync::mpsc`'s
//! bounded `sync_channel` serves that shape, but generically: every
//! descriptor is its own synchronised rendezvous with the channel's
//! shared slot state (per-send atomic RMWs, blocking-path bookkeeping,
//! MPSC generality the pool never uses — and on the *unbounded* flavour,
//! a heap node per message). This module replaces it with the structure
//! every kernel-bypass datapath (DPDK `rte_ring` in SP/SC mode,
//! io_uring's SQ/CQ pair, virtio vrings) uses instead:
//!
//! * a power-of-two slot array indexed by free-running positions, so
//!   wrap-around is a bit-mask and full/empty are subtractions;
//! * a producer-owned *tail* and a consumer-owned *head*, each on its own
//!   cache line so the two sides never false-share;
//! * **burst** operations: [`Producer::enqueue_burst`] writes a whole
//!   staging buffer of descriptors and publishes them with a *single*
//!   release store of the tail; [`Consumer::dequeue_burst`] mirrors it on
//!   the read side. Handing off a 32-packet batch costs one atomic
//!   round-trip instead of 32 lock acquisitions;
//! * cached peer positions: the producer re-reads the consumer's head
//!   (and vice versa) only when its cached copy says the ring might be
//!   full (empty), so the steady state touches the shared cache line a
//!   handful of times per burst, not per descriptor.
//!
//! The ring moves owned values and never allocates after construction —
//! it is the transport under the pool's zero-allocation ingestion gate.
//! Capacity rounds **up** to the next power of two ([`Producer::capacity`]
//! reports the effective value) and the boundary is exact: a ring holds
//! exactly `capacity` in-flight descriptors, the `capacity + 1`-th push
//! fails, and one pop makes room for exactly one more.
//!
//! # Safety model
//!
//! The unsafe code is confined to slot reads/writes and is sound because
//! the types enforce the SPSC discipline statically: [`Producer`] and
//! [`Consumer`] are unique (non-`Clone`) handles, every mutating method
//! takes `&mut self`, and slot positions are partitioned by the two
//! indices — the producer only writes slots in `[tail, head + capacity)`
//! (free space), the consumer only reads slots in `[head, tail)`
//! (published), and each side learns the other's index through an
//! acquire/release pair that makes the slot contents visible before the
//! index movement that exposes them. The two-thread stress test
//! (`tests/ring_stress.rs`) hammers this with randomized burst sizes over
//! millions of descriptors.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads-and-aligns a value to a cache line, so the producer's tail and the
/// consumer's head never share one (128 bytes covers the adjacent-line
/// prefetcher on x86 as well).
#[repr(align(128))]
struct CachePadded<T>(T);

/// The slot array and indices shared by the two endpoints.
struct Shared<T> {
    /// `capacity` slots, each holding a descriptor between the moment the
    /// producer writes it and the moment the consumer reads it out.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; slot of position `p` is `p & mask`.
    mask: usize,
    /// Consumer position: the next slot to read. Slots before it are free.
    head: CachePadded<AtomicUsize>,
    /// Producer position: the next slot to write. Slots before it (back to
    /// `head`) are published.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the `UnsafeCell` slots are the only non-Sync state; they are
// accessed only through the unique `Producer`/`Consumer` endpoints under
// the index discipline described in the module docs, which hands each slot
// to exactly one thread at a time (with acquire/release edges at every
// handover). Descriptors cross threads, hence `T: Send`.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (`Arc`), so the atomics hold the final
        // positions; everything still in flight must be dropped here.
        let mut head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while head != tail {
            // SAFETY: positions in `[head, tail)` were written by the
            // producer and never consumed.
            unsafe { self.slots[head & self.mask].get_mut().assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The write endpoint of an SPSC ring. Unique: it cannot be cloned, and
/// every operation takes `&mut self`.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of the published tail (only this side moves it).
    tail: usize,
    /// Last observed consumer head; refreshed only when the ring looks
    /// full, so the steady state stays off the consumer's cache line.
    head_cache: usize,
}

/// The read endpoint of an SPSC ring. Unique, like [`Producer`].
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of the published head (only this side moves it).
    head: usize,
    /// Last observed producer tail; refreshed when the ring looks empty.
    tail_cache: usize,
}

/// Creates an SPSC ring holding up to `capacity` descriptors, **rounded up
/// to the next power of two** (minimum 1). The two returned endpoints are
/// the only handles; send one to another thread to form the channel.
pub fn spsc_ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        slots,
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer { shared: Arc::clone(&shared), tail: 0, head_cache: 0 },
        Consumer { shared, head: 0, tail_cache: 0 },
    )
}

impl<T> Producer<T> {
    /// Effective ring capacity (the configured one rounded up to a power
    /// of two): the exact number of descriptors that can be in flight.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Free slots right now (refreshes the cached consumer position).
    pub fn free_slots(&mut self) -> usize {
        self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        self.capacity() - self.tail.wrapping_sub(self.head_cache)
    }

    /// Pushes one descriptor and publishes it immediately. Returns the
    /// descriptor back when the ring is full — the caller owns the
    /// rejection (the pool counts it as backpressure).
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let cap = self.capacity();
        if self.tail.wrapping_sub(self.head_cache) == cap {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) == cap {
                return Err(item);
            }
        }
        // SAFETY: the ring is not full, so slot `tail & mask` is outside
        // `[head, tail)` — the consumer will not touch it until the
        // release store below publishes it.
        unsafe { (*self.shared.slots[self.tail & self.shared.mask].get()).write(item) };
        self.tail = self.tail.wrapping_add(1);
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Moves the longest prefix of `staging` that fits into the ring and
    /// publishes the whole burst with **one** release store. Returns how
    /// many descriptors were accepted; the rejected remainder stays in
    /// `staging` (shifted to the front), owned by the caller.
    pub fn enqueue_burst(&mut self, staging: &mut Vec<T>) -> usize {
        let cap = self.capacity();
        let mut free = cap - self.tail.wrapping_sub(self.head_cache);
        if free < staging.len() {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            free = cap - self.tail.wrapping_sub(self.head_cache);
        }
        let n = free.min(staging.len());
        if n == 0 {
            return 0;
        }
        let mut pos = self.tail;
        for item in staging.drain(..n) {
            // SAFETY: `n` positions starting at `tail` are free (see
            // `try_push`); none is visible to the consumer until the
            // single release store after the loop.
            unsafe { (*self.shared.slots[pos & self.shared.mask].get()).write(item) };
            pos = pos.wrapping_add(1);
        }
        self.tail = pos;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        n
    }
}

impl<T> Consumer<T> {
    /// Effective ring capacity, as on the producer side.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Whether the ring is empty right now (refreshes the cached producer
    /// position).
    pub fn is_empty(&mut self) -> bool {
        self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        self.tail_cache == self.head
    }

    /// Descriptors available right now (refreshes the cached position).
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        self.tail_cache.wrapping_sub(self.head)
    }

    /// Pops one descriptor, if any is published.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.tail_cache == self.head {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            if self.tail_cache == self.head {
                return None;
            }
        }
        // SAFETY: `head < tail_cache ≤` the published tail, so this slot
        // holds a descriptor the producer published (acquire-ordered) and
        // will not rewrite until the release store of `head` below.
        let item = unsafe { (*self.shared.slots[self.head & self.shared.mask].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Appends up to `max` published descriptors to `out`, in FIFO order,
    /// releasing all the consumed slots back to the producer with **one**
    /// store. Returns how many were moved.
    pub fn dequeue_burst(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut avail = self.tail_cache.wrapping_sub(self.head);
        if avail < max {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            avail = self.tail_cache.wrapping_sub(self.head);
        }
        let n = avail.min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for _ in 0..n {
            // SAFETY: as in `try_pop`; each slot in the burst was
            // published by the producer and is released back only by the
            // single head store after the loop.
            let item = unsafe { (*self.shared.slots[self.head & self.shared.mask].get()).assume_init_read() };
            out.push(item);
            self.head = self.head.wrapping_add(1);
        }
        self.shared.head.0.store(self.head, Ordering::Release);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_the_next_power_of_two() {
        for (requested, effective) in [(1, 1), (2, 2), (3, 4), (5, 8), (1000, 1024), (1024, 1024)] {
            let (tx, rx) = spsc_ring::<u64>(requested);
            assert_eq!(tx.capacity(), effective, "requested {requested}");
            assert_eq!(rx.capacity(), effective);
        }
        let (tx, _rx) = spsc_ring::<u64>(0);
        assert_eq!(tx.capacity(), 1);
    }

    /// The queue-depth boundary satellite: a ring filled to *exactly* its
    /// capacity accepts every descriptor, rejects precisely the next one,
    /// and reopens one slot per pop — accounting at the boundary is exact.
    #[test]
    fn fill_to_exact_capacity_then_reject() {
        let (mut tx, mut rx) = spsc_ring::<u64>(5); // rounds up to 8
        let cap = tx.capacity();
        assert_eq!(cap, 8);
        for i in 0..cap as u64 {
            assert!(tx.try_push(i).is_ok(), "descriptor {i} of exactly capacity must fit");
        }
        assert_eq!(tx.try_push(99), Err(99), "capacity + 1 must be rejected");
        assert_eq!(tx.free_slots(), 0);
        // One pop frees exactly one slot.
        assert_eq!(rx.try_pop(), Some(0));
        assert!(tx.try_push(100).is_ok());
        assert_eq!(tx.try_push(101), Err(101));
        // Burst accounting at the same boundary: nothing fits, nothing is
        // silently dropped.
        let mut staging = vec![7u64, 8, 9];
        assert_eq!(tx.enqueue_burst(&mut staging), 0);
        assert_eq!(staging, vec![7, 8, 9], "rejected burst stays with the caller");
        // Drain everything; FIFO order, nothing lost or duplicated.
        let mut out = Vec::new();
        while rx.try_pop().map(|v| out.push(v)).is_some() {}
        assert_eq!(out, (1..cap as u64).chain([100]).collect::<Vec<_>>());
    }

    #[test]
    fn burst_accepts_the_fitting_prefix_exactly() {
        let (mut tx, mut rx) = spsc_ring::<u64>(4);
        let mut staging: Vec<u64> = (0..7).collect();
        assert_eq!(tx.enqueue_burst(&mut staging), 4);
        assert_eq!(staging, vec![4, 5, 6], "remainder shifted to the front, in order");
        let mut out = Vec::new();
        assert_eq!(rx.dequeue_burst(&mut out, 64), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(tx.enqueue_burst(&mut staging), 3);
        assert!(staging.is_empty());
    }

    #[test]
    fn wrap_around_preserves_fifo_order() {
        let (mut tx, mut rx) = spsc_ring::<u64>(8);
        let mut expected = 0u64;
        let mut next = 0u64;
        let mut out = Vec::new();
        // Many epochs of staggered push/pop force the positions far past
        // the slot count, exercising the mask arithmetic.
        for round in 0..1000 {
            let burst = 1 + (round % 7) as usize;
            let mut staging: Vec<u64> = (next..next + burst as u64).collect();
            next += tx.enqueue_burst(&mut staging) as u64;
            out.clear();
            rx.dequeue_burst(&mut out, burst);
            for v in &out {
                assert_eq!(*v, expected);
                expected += 1;
            }
        }
        while let Some(v) = rx.try_pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, next);
    }

    #[test]
    fn dropping_the_ring_drops_in_flight_descriptors() {
        let counter = Arc::new(());
        let (mut tx, mut rx) = spsc_ring::<Arc<()>>(8);
        for _ in 0..6 {
            tx.try_push(Arc::clone(&counter)).unwrap();
        }
        assert!(rx.try_pop().is_some());
        assert_eq!(Arc::strong_count(&counter), 6); // 1 local + 1 popped + 4 in flight...
        drop(rx.try_pop());
        assert_eq!(Arc::strong_count(&counter), 5);
        drop((tx, rx));
        assert_eq!(Arc::strong_count(&counter), 1, "in-flight descriptors leaked");
    }

    #[test]
    fn len_and_is_empty_track_occupancy() {
        let (mut tx, mut rx) = spsc_ring::<u8>(4);
        assert!(rx.is_empty());
        assert_eq!(rx.len(), 0);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert!(!rx.is_empty());
        assert_eq!(rx.len(), 2);
        rx.try_pop();
        assert_eq!(rx.len(), 1);
        assert_eq!(tx.free_slots(), 3);
    }
}
