//! Pool-wide live counters: barrier-free metrics for a running pool.
//!
//! [`WorkerPool::flush`](crate::WorkerPool::flush) is a barrier — it
//! reports exact deltas, but only by making every shard stop and answer.
//! A metrics endpoint scraping a production datapath cannot afford that;
//! it wants the kernel model instead, where `ethtool -S`-style counters
//! are per-queue cells the datapath updates locally and readers sample at
//! any time without synchronising with the hot path.
//!
//! [`PoolCounters`] reproduces that: one [`ShardCounters`] cell block per
//! shard, each a set of relaxed atomics. The dispatcher adds its
//! enqueue/reject accounting at publish time; each worker adds its
//! processed/verdict/recycle deltas once per batch (batch-local sums, one
//! `fetch_add` per counter per batch — nothing per packet). Readers call
//! [`PoolCounters::snapshot`] from any thread, any time, with no barrier
//! and no effect on the workers.
//!
//! Consistency: each individual counter is exact (updated by exactly one
//! thread); a snapshot taken *while traffic is moving* may straddle a
//! batch (e.g. `enqueued` already includes packets whose `processed`
//! increment has not landed yet). At any quiet point — after a
//! [`flush`](crate::WorkerPool::flush) barrier returns — a snapshot
//! agrees exactly with the dispatcher's [`ShardStats`] and the sum of all
//! flushed [`WorkerStats`] deltas (regression-tested in the pool tests).

use crate::{ShardStats, WorkerStats};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one shard. All cells are relaxed atomics: written by
/// exactly one thread each (dispatcher or the shard's worker), readable by
/// anyone at any time.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Packets accepted into the shard's descriptor ring (dispatcher).
    enqueued: AtomicU64,
    /// Packets rejected because the ring was full (dispatcher).
    rejected: AtomicU64,
    /// Packets processed by the worker.
    processed: AtomicU64,
    /// Forward verdicts.
    forwarded: AtomicU64,
    /// Local-delivery verdicts.
    local_delivered: AtomicU64,
    /// Drop verdicts.
    dropped: AtomicU64,
    /// Batches executed by the worker.
    batches: AtomicU64,
    /// Packet buffers handed back to the dispatcher through the free-ring.
    recycled: AtomicU64,
}

impl ShardCounters {
    /// Dispatcher-side accounting: one call per published burst.
    pub(crate) fn add_ingress(&self, enqueued: u64, rejected: u64) {
        if enqueued > 0 {
            self.enqueued.fetch_add(enqueued, Ordering::Relaxed);
        }
        if rejected > 0 {
            self.rejected.fetch_add(rejected, Ordering::Relaxed);
        }
    }

    /// Worker-side accounting: one call per processed batch, with the
    /// batch's verdict deltas and how many buffers went to the free-ring.
    pub(crate) fn add_batch(&self, delta: &WorkerStats, recycled: u64) {
        self.processed.fetch_add(delta.processed, Ordering::Relaxed);
        self.forwarded.fetch_add(delta.forwarded, Ordering::Relaxed);
        self.local_delivered.fetch_add(delta.local_delivered, Ordering::Relaxed);
        self.dropped.fetch_add(delta.dropped, Ordering::Relaxed);
        self.batches.fetch_add(delta.batches, Ordering::Relaxed);
        if recycled > 0 {
            self.recycled.fetch_add(recycled, Ordering::Relaxed);
        }
    }

    /// Samples this shard's counters.
    pub fn sample(&self) -> ShardSnapshot {
        ShardSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            processed: self.processed.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            local_delivered: self.local_delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time sample of one shard's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Packets accepted into the shard's descriptor ring since pool start.
    pub enqueued: u64,
    /// Packets rejected by a full ring (backpressure) since pool start.
    pub rejected: u64,
    /// Packets processed by the worker.
    pub processed: u64,
    /// Forward verdicts.
    pub forwarded: u64,
    /// Local-delivery verdicts.
    pub local_delivered: u64,
    /// Drop verdicts.
    pub dropped: u64,
    /// Batches executed.
    pub batches: u64,
    /// Packet buffers recycled back to the dispatcher's arena.
    pub recycled: u64,
}

impl ShardSnapshot {
    /// The dispatcher-side view of this sample, for comparison with
    /// [`ShardStats`].
    pub fn as_shard_stats(&self) -> ShardStats {
        ShardStats { enqueued: self.enqueued, rejected: self.rejected }
    }
}

/// A consistent-at-quiescence sample of the whole pool, in shard index
/// order. See the [module docs](self) for what "consistent" means while
/// traffic is moving.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Per-shard samples, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
}

impl PoolSnapshot {
    /// Sums a counter over every shard.
    fn total(&self, field: impl Fn(&ShardSnapshot) -> u64) -> u64 {
        self.shards.iter().map(field).sum()
    }

    /// Total packets accepted across all shards.
    pub fn enqueued(&self) -> u64 {
        self.total(|s| s.enqueued)
    }

    /// Total packets rejected (backpressure) across all shards.
    pub fn rejected(&self) -> u64 {
        self.total(|s| s.rejected)
    }

    /// Total packets processed across all shards.
    pub fn processed(&self) -> u64 {
        self.total(|s| s.processed)
    }

    /// Total forward verdicts across all shards.
    pub fn forwarded(&self) -> u64 {
        self.total(|s| s.forwarded)
    }

    /// Total local deliveries across all shards.
    pub fn local_delivered(&self) -> u64 {
        self.total(|s| s.local_delivered)
    }

    /// Total drop verdicts across all shards.
    pub fn dropped(&self) -> u64 {
        self.total(|s| s.dropped)
    }

    /// Total buffers recycled through the free-rings.
    pub fn recycled(&self) -> u64 {
        self.total(|s| s.recycled)
    }

    /// Packets accepted but not yet processed at sample time — the live
    /// backlog estimate a load-shedding controller would watch.
    pub fn in_flight(&self) -> u64 {
        self.enqueued().saturating_sub(self.processed())
    }
}

/// The pool's live counter block: one [`ShardCounters`] per shard. Held
/// behind an `Arc` by the pool, its workers, and any number of metric
/// readers ([`WorkerPool::counters`](crate::WorkerPool::counters) hands
/// out clones).
#[derive(Debug)]
pub struct PoolCounters {
    shards: Box<[ShardCounters]>,
}

impl PoolCounters {
    pub(crate) fn new(workers: u32) -> Self {
        PoolCounters { shards: (0..workers).map(|_| ShardCounters::default()).collect() }
    }

    /// Number of shards the block covers.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// One shard's live counters.
    pub fn shard(&self, shard: u32) -> &ShardCounters {
        &self.shards[shard as usize]
    }

    /// Samples every shard, barrier-free, in shard index order.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot { shards: self.shards.iter().map(ShardCounters::sample).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_both_sides() {
        let counters = PoolCounters::new(2);
        counters.shard(0).add_ingress(10, 2);
        counters.shard(1).add_ingress(5, 0);
        let batch = WorkerStats {
            steered: 10,
            processed: 10,
            forwarded: 8,
            local_delivered: 1,
            dropped: 1,
            batches: 2,
        };
        counters.shard(0).add_batch(&batch, 10);
        let snap = counters.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].enqueued, 10);
        assert_eq!(snap.shards[0].rejected, 2);
        assert_eq!(snap.shards[0].processed, 10);
        assert_eq!(snap.shards[0].forwarded, 8);
        assert_eq!(snap.shards[0].recycled, 10);
        assert_eq!(snap.shards[1].enqueued, 5);
        assert_eq!(snap.enqueued(), 15);
        assert_eq!(snap.rejected(), 2);
        assert_eq!(snap.processed(), 10);
        assert_eq!(snap.in_flight(), 5);
        assert_eq!(snap.shards[0].as_shard_stats(), ShardStats { enqueued: 10, rejected: 2 });
    }

    #[test]
    fn in_flight_saturates() {
        let counters = PoolCounters::new(1);
        let batch = WorkerStats { processed: 3, ..Default::default() };
        counters.shard(0).add_batch(&batch, 0);
        // Processed can transiently exceed enqueued in a torn mid-traffic
        // sample; the backlog estimate must not wrap.
        assert_eq!(counters.snapshot().in_flight(), 0);
    }
}
