//! Pool-wide live counters: barrier-free, per-tenant × per-shard metrics
//! for a running pool.
//!
//! [`WorkerPool::flush`](crate::WorkerPool::flush) is a barrier — it
//! reports exact deltas, but only by making every shard stop and answer.
//! A metrics endpoint scraping a production datapath cannot afford that;
//! it wants the kernel model instead, where `ethtool -S`-style counters
//! are per-queue cells the datapath updates locally and readers sample at
//! any time without synchronising with the hot path.
//!
//! [`PoolCounters`] reproduces that, with **tenancy** as the outer
//! dimension: one [`TenantCounters`] block per registered tenant, each a
//! row of [`ShardCounters`] cells (one per shard), each cell a set of
//! relaxed atomics. The dispatcher adds its enqueue/reject accounting at
//! publish time; each worker adds its processed/verdict/recycle deltas
//! once per tenant run within a batch (batch-local sums, one `fetch_add`
//! per counter per run — nothing per packet). The hot path never touches
//! a lock: the dispatcher and every worker hold direct `Arc`s to their
//! tenants' cell blocks (handed over on the control channel when a tenant
//! registers); only registration and [`PoolCounters::snapshot`] take the
//! tenant-list lock.
//!
//! Consistency: each individual counter is exact (updated by exactly one
//! thread); a snapshot taken *while traffic is moving* may straddle a
//! batch (e.g. `enqueued` already includes packets whose `processed`
//! increment has not landed yet). At any quiet point — after a
//! [`flush`](crate::WorkerPool::flush) barrier returns — a snapshot
//! agrees exactly with the dispatcher's [`ShardStats`] and the sum of all
//! flushed [`WorkerStats`] deltas, and the per-tenant rows sum exactly to
//! the aggregated per-shard view (regression-tested in the pool and
//! tenant-isolation tests).

use crate::pool::TenantId;
use crate::{ShardStats, WorkerStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Live counters of one (tenant, shard) cell. All cells are relaxed
/// atomics: written by exactly one thread each (dispatcher or the shard's
/// worker), readable by anyone at any time.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Packets accepted into the shard's descriptor ring (dispatcher).
    enqueued: AtomicU64,
    /// Packets rejected because the ring was full (dispatcher).
    rejected: AtomicU64,
    /// Packets processed by the worker.
    processed: AtomicU64,
    /// Forward verdicts.
    forwarded: AtomicU64,
    /// Local-delivery verdicts.
    local_delivered: AtomicU64,
    /// Drop verdicts.
    dropped: AtomicU64,
    /// Batches (tenant runs) executed by the worker.
    batches: AtomicU64,
    /// Packet buffers handed back to the dispatcher through the free-ring.
    recycled: AtomicU64,
    /// Packets shed at admission because the tenant's cost budget was
    /// exhausted (dispatcher). Not included in `rejected`.
    rejected_over_budget: AtomicU64,
    /// Cost-model units charged for processed work (worker), priced by
    /// [`work_cost`](crate::work_cost) from the emitted `WorkSummary`s.
    cost: AtomicU64,
}

impl ShardCounters {
    /// Dispatcher-side accounting: one call per published burst.
    pub(crate) fn add_ingress(&self, enqueued: u64, rejected: u64) {
        if enqueued > 0 {
            self.enqueued.fetch_add(enqueued, Ordering::Relaxed);
        }
        if rejected > 0 {
            self.rejected.fetch_add(rejected, Ordering::Relaxed);
        }
    }

    /// Worker-side accounting: one call per processed tenant run, with the
    /// run's verdict deltas.
    pub(crate) fn add_batch(&self, delta: &WorkerStats) {
        self.processed.fetch_add(delta.processed, Ordering::Relaxed);
        self.forwarded.fetch_add(delta.forwarded, Ordering::Relaxed);
        self.local_delivered.fetch_add(delta.local_delivered, Ordering::Relaxed);
        self.dropped.fetch_add(delta.dropped, Ordering::Relaxed);
        self.batches.fetch_add(delta.batches, Ordering::Relaxed);
    }

    /// Worker-side accounting: how many of this tenant's buffers went to
    /// the free-ring in one batch publish.
    pub(crate) fn add_recycled(&self, recycled: u64) {
        if recycled > 0 {
            self.recycled.fetch_add(recycled, Ordering::Relaxed);
        }
    }

    /// Dispatcher-side accounting: packets shed because the tenant's cost
    /// budget was exhausted.
    pub(crate) fn add_over_budget(&self, shed: u64) {
        if shed > 0 {
            self.rejected_over_budget.fetch_add(shed, Ordering::Relaxed);
        }
    }

    /// Worker-side accounting: cost-model units charged for one tenant run.
    pub(crate) fn add_cost(&self, cost: u64) {
        if cost > 0 {
            self.cost.fetch_add(cost, Ordering::Relaxed);
        }
    }

    /// Relaxed read of the processed counter — the dispatcher's ring
    /// occupancy estimate subtracts this from its own admitted count.
    pub(crate) fn processed_relaxed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Relaxed read of the charged cost — the dispatcher's budget true-up
    /// debits the surcharge (cost beyond the base already charged at
    /// admission) against the tenant's token bucket.
    pub(crate) fn cost_relaxed(&self) -> u64 {
        self.cost.load(Ordering::Relaxed)
    }

    /// Samples this cell's counters.
    pub fn sample(&self) -> ShardSnapshot {
        ShardSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            processed: self.processed.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            local_delivered: self.local_delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            rejected_over_budget: self.rejected_over_budget.load(Ordering::Relaxed),
            cost: self.cost.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time sample of one counter cell (or a sum of cells).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Packets accepted into the shard's descriptor ring since pool start.
    pub enqueued: u64,
    /// Packets rejected by a full ring (backpressure) since pool start.
    pub rejected: u64,
    /// Packets processed by the worker.
    pub processed: u64,
    /// Forward verdicts.
    pub forwarded: u64,
    /// Local-delivery verdicts.
    pub local_delivered: u64,
    /// Drop verdicts.
    pub dropped: u64,
    /// Batches (tenant runs) executed.
    pub batches: u64,
    /// Packet buffers recycled back to the dispatcher's arena.
    pub recycled: u64,
    /// Packets shed at admission by an exhausted cost budget (distinct
    /// from `rejected`, which counts ring-full and quota sheds).
    pub rejected_over_budget: u64,
    /// Cost-model units charged for processed work.
    pub cost: u64,
}

impl ShardSnapshot {
    /// The dispatcher-side view of this sample, for comparison with
    /// [`ShardStats`].
    pub fn as_shard_stats(&self) -> ShardStats {
        ShardStats { enqueued: self.enqueued, rejected: self.rejected }
    }

    /// Adds another sample cell-by-cell (summing tenants into the global
    /// per-shard view, or shards into a tenant total).
    pub fn accumulate(&mut self, other: &ShardSnapshot) {
        self.enqueued += other.enqueued;
        self.rejected += other.rejected;
        self.processed += other.processed;
        self.forwarded += other.forwarded;
        self.local_delivered += other.local_delivered;
        self.dropped += other.dropped;
        self.batches += other.batches;
        self.recycled += other.recycled;
        self.rejected_over_budget += other.rejected_over_budget;
        self.cost += other.cost;
    }
}

/// The live counter row of one tenant: one [`ShardCounters`] cell per
/// shard. The dispatcher and the workers hold direct `Arc`s to the rows of
/// the tenants they serve — updating a cell never takes a lock.
#[derive(Debug)]
pub struct TenantCounters {
    shards: Box<[ShardCounters]>,
}

impl TenantCounters {
    fn new(workers: u32) -> Self {
        TenantCounters { shards: (0..workers).map(|_| ShardCounters::default()).collect() }
    }

    /// This tenant's cell on `shard`.
    pub fn shard(&self, shard: u32) -> &ShardCounters {
        &self.shards[shard as usize]
    }

    /// Samples every shard cell of this tenant, in shard index order.
    pub fn sample(&self) -> TenantSnapshot {
        TenantSnapshot { shards: self.shards.iter().map(ShardCounters::sample).collect() }
    }
}

/// A point-in-time sample of one tenant's row, in shard index order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Per-shard samples, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
}

impl TenantSnapshot {
    /// This tenant's totals across all shards.
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.shards {
            total.accumulate(shard);
        }
        total
    }
}

/// A consistent-at-quiescence sample of the whole pool: the per-tenant
/// rows plus the aggregated per-shard view (each `shards[q]` is the sum of
/// every tenant's cell on shard `q`, so the tenant rows always sum exactly
/// to the global view — by construction at sample time, and exactly equal
/// to the flush/`ShardStats` totals at quiet points). See the
/// [module docs](self) for what "consistent" means while traffic moves.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Per-tenant rows, indexed by tenant id.
    pub tenants: Vec<TenantSnapshot>,
    /// Aggregated per-shard samples (summed over tenants), indexed by
    /// shard id.
    pub shards: Vec<ShardSnapshot>,
    /// Where each shard thread landed, indexed by shard id: the core it
    /// pinned to (if [`PoolConfig::pinning`](crate::PoolConfig::pinning)
    /// asked for one and `sched_setaffinity` succeeded) and that core's
    /// NUMA node. Benches record this so multi-shard rows can prove they
    /// ran on real, distinct cores.
    pub placement: Vec<PlacementSnapshot>,
}

/// One shard thread's observed placement (see [`PoolSnapshot::placement`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlacementSnapshot {
    /// The core the shard thread successfully pinned itself to, `None`
    /// when unpinned (policy `None`, or the pin failed).
    pub pinned_core: Option<u32>,
    /// The pinned core's NUMA node, where sysfs exposes one.
    pub numa_node: Option<u32>,
}

impl PoolSnapshot {
    /// Sums a counter over every shard.
    fn total(&self, field: impl Fn(&ShardSnapshot) -> u64) -> u64 {
        self.shards.iter().map(field).sum()
    }

    /// Pool-wide totals as one cell.
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.shards {
            total.accumulate(shard);
        }
        total
    }

    /// Total packets accepted across all shards and tenants.
    pub fn enqueued(&self) -> u64 {
        self.total(|s| s.enqueued)
    }

    /// Total packets rejected (backpressure) across all shards.
    pub fn rejected(&self) -> u64 {
        self.total(|s| s.rejected)
    }

    /// Total packets processed across all shards.
    pub fn processed(&self) -> u64 {
        self.total(|s| s.processed)
    }

    /// Total forward verdicts across all shards.
    pub fn forwarded(&self) -> u64 {
        self.total(|s| s.forwarded)
    }

    /// Total local deliveries across all shards.
    pub fn local_delivered(&self) -> u64 {
        self.total(|s| s.local_delivered)
    }

    /// Total drop verdicts across all shards.
    pub fn dropped(&self) -> u64 {
        self.total(|s| s.dropped)
    }

    /// Total buffers recycled through the free-rings.
    pub fn recycled(&self) -> u64 {
        self.total(|s| s.recycled)
    }

    /// Total packets shed at admission by exhausted cost budgets.
    pub fn rejected_over_budget(&self) -> u64 {
        self.total(|s| s.rejected_over_budget)
    }

    /// Total cost-model units charged across all shards.
    pub fn cost(&self) -> u64 {
        self.total(|s| s.cost)
    }

    /// Packets accepted but not yet processed at sample time — the live
    /// backlog estimate a load-shedding controller would watch.
    pub fn in_flight(&self) -> u64 {
        self.enqueued().saturating_sub(self.processed())
    }
}

/// The pool's live counter block: one [`TenantCounters`] row per tenant.
/// Held behind an `Arc` by the pool, its workers, and any number of metric
/// readers ([`WorkerPool::counters`](crate::WorkerPool::counters) hands
/// out clones). The lock guards only the row *list* (taken on tenant
/// registration and on snapshot); the rows themselves are lock-free.
#[derive(Debug)]
pub struct PoolCounters {
    workers: u32,
    tenants: RwLock<Vec<Arc<TenantCounters>>>,
    /// Per-shard placement cells, written once by each worker thread at
    /// spawn (after its pin attempt) and sampled into
    /// [`PoolSnapshot::placement`]. `u32::MAX` encodes "none".
    placement: Box<[ShardPlacementCell]>,
}

#[derive(Debug)]
struct ShardPlacementCell {
    pinned_core: AtomicU64,
    numa_node: AtomicU64,
}

/// Sentinel for "no core / no node" in the placement cells.
const PLACEMENT_NONE: u64 = u64::MAX;

impl ShardPlacementCell {
    fn new() -> Self {
        ShardPlacementCell {
            pinned_core: AtomicU64::new(PLACEMENT_NONE),
            numa_node: AtomicU64::new(PLACEMENT_NONE),
        }
    }

    fn sample(&self) -> PlacementSnapshot {
        let decode = |v: u64| if v == PLACEMENT_NONE { None } else { Some(v as u32) };
        PlacementSnapshot {
            pinned_core: decode(self.pinned_core.load(Ordering::Relaxed)),
            numa_node: decode(self.numa_node.load(Ordering::Relaxed)),
        }
    }
}

impl PoolCounters {
    /// A counter block with one (default) tenant row.
    pub(crate) fn new(workers: u32) -> Self {
        PoolCounters {
            workers,
            tenants: RwLock::new(vec![Arc::new(TenantCounters::new(workers))]),
            placement: (0..workers).map(|_| ShardPlacementCell::new()).collect(),
        }
    }

    /// Records shard `shard`'s observed placement — called once by the
    /// worker thread itself, right after its pin attempt.
    pub(crate) fn record_placement(&self, shard: u32, core: Option<u32>, numa: Option<u32>) {
        let cell = &self.placement[shard as usize];
        let encode = |v: Option<u32>| v.map_or(PLACEMENT_NONE, u64::from);
        cell.pinned_core.store(encode(core), Ordering::Relaxed);
        cell.numa_node.store(encode(numa), Ordering::Relaxed);
    }

    /// Appends a fresh tenant row and returns it (the pool hands the `Arc`
    /// to the dispatcher and, over the control channel, to every worker).
    pub(crate) fn add_tenant(&self) -> Arc<TenantCounters> {
        let row = Arc::new(TenantCounters::new(self.workers));
        self.tenants.write().expect("counter registry lock").push(Arc::clone(&row));
        row
    }

    /// Number of shards each tenant row covers.
    pub fn workers(&self) -> usize {
        self.workers as usize
    }

    /// Number of registered tenant rows.
    pub fn tenants(&self) -> usize {
        self.tenants.read().expect("counter registry lock").len()
    }

    /// One tenant's live counter row.
    pub fn tenant(&self, tenant: TenantId) -> Arc<TenantCounters> {
        Arc::clone(&self.tenants.read().expect("counter registry lock")[tenant.index()])
    }

    /// Samples every tenant row, barrier-free, and aggregates the global
    /// per-shard view. Tenant and shard indices match registration order.
    pub fn snapshot(&self) -> PoolSnapshot {
        let rows = self.tenants.read().expect("counter registry lock");
        let tenants: Vec<TenantSnapshot> = rows.iter().map(|row| row.sample()).collect();
        drop(rows);
        let mut shards = vec![ShardSnapshot::default(); self.workers as usize];
        for tenant in &tenants {
            for (aggregate, cell) in shards.iter_mut().zip(&tenant.shards) {
                aggregate.accumulate(cell);
            }
        }
        let placement = self.placement.iter().map(|cell| cell.sample()).collect();
        PoolSnapshot { tenants, shards, placement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_both_sides() {
        let counters = PoolCounters::new(2);
        let row = counters.tenant(TenantId::DEFAULT);
        row.shard(0).add_ingress(10, 2);
        row.shard(1).add_ingress(5, 0);
        let batch = WorkerStats {
            steered: 10,
            processed: 10,
            forwarded: 8,
            local_delivered: 1,
            dropped: 1,
            batches: 2,
        };
        row.shard(0).add_batch(&batch);
        row.shard(0).add_recycled(10);
        let snap = counters.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.shards[0].enqueued, 10);
        assert_eq!(snap.shards[0].rejected, 2);
        assert_eq!(snap.shards[0].processed, 10);
        assert_eq!(snap.shards[0].forwarded, 8);
        assert_eq!(snap.shards[0].recycled, 10);
        assert_eq!(snap.shards[1].enqueued, 5);
        assert_eq!(snap.enqueued(), 15);
        assert_eq!(snap.rejected(), 2);
        assert_eq!(snap.processed(), 10);
        assert_eq!(snap.in_flight(), 5);
        assert_eq!(snap.shards[0].as_shard_stats(), ShardStats { enqueued: 10, rejected: 2 });
        assert_eq!(snap.tenants[0].totals().enqueued, 15);
    }

    #[test]
    fn tenant_rows_sum_to_the_aggregated_shards() {
        let counters = PoolCounters::new(2);
        let second = counters.add_tenant();
        assert_eq!(counters.tenants(), 2);
        counters.tenant(TenantId::DEFAULT).shard(0).add_ingress(7, 1);
        second.shard(0).add_ingress(3, 0);
        second.shard(1).add_ingress(2, 2);
        let snap = counters.snapshot();
        for shard in 0..2 {
            let mut summed = ShardSnapshot::default();
            for tenant in &snap.tenants {
                summed.accumulate(&tenant.shards[shard]);
            }
            assert_eq!(summed, snap.shards[shard], "shard {shard}");
        }
        assert_eq!(snap.enqueued(), 12);
        assert_eq!(snap.rejected(), 3);
        assert_eq!(snap.tenants[1].totals().enqueued, 5);
    }

    #[test]
    fn in_flight_saturates() {
        let counters = PoolCounters::new(1);
        let batch = WorkerStats { processed: 3, ..Default::default() };
        counters.tenant(TenantId::DEFAULT).shard(0).add_batch(&batch);
        // Processed can transiently exceed enqueued in a torn mid-traffic
        // sample; the backlog estimate must not wrap.
        assert_eq!(counters.snapshot().in_flight(), 0);
    }
}
