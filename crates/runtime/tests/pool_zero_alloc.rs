//! Worker-pool steady-state allocation regression test.
//!
//! Run with `cargo test -p seg6-runtime --features alloc-counter`. Three
//! phases share one test (the counter is **process-wide**, so no other
//! test may run concurrently in this binary):
//!
//! 1. **Owned-buffer rounds** — pre-built `PacketBuf`s enqueued in bursts
//!    and flushed: the SPSC descriptor ring, the per-shard staging, the
//!    reused batch/verdict buffers and the park/unpark wakeups must not
//!    allocate per packet.
//! 2. **Recycled-ingestion rounds** — the PR-4 acceptance gate: frames
//!    enter as *byte slices* through `enqueue_bytes_all`, are copied into
//!    recycled buffers from the free-ring-fed arena, processed, and their
//!    storage returned by the workers. A whole steady-state round —
//!    dispatch → ring → worker → free-ring → dispatch — performs **zero**
//!    buffer allocations; only the flush barrier's reply channel costs a
//!    small per-round constant.
//! 3. **Multi-tenant rounds** — the PR-5 acceptance gate: a second tenant
//!    registers (its one-time installation cost and the arena's
//!    re-provision to the larger in-flight bound happen *outside* the
//!    measurement), then both tenants' byte-slice traffic interleaves
//!    through the same rings and the same arena. Per-tenant descriptor
//!    stamping, tenant-run splitting and the per-tenant × per-shard
//!    counters must all stay allocation-free, and the arena must stay
//!    mint-flat.
#![cfg(feature = "alloc-counter")]

use netpkt::packet::build_ipv6_udp_packet;
use netpkt::PacketBuf;
use seg6_core::alloc_counter::{global_allocations, CountingAllocator};
use seg6_core::{Nexthop, Seg6Datapath};
use seg6_runtime::{Ingress, PoolConfig, TenantSpec, WorkerPool};
use std::net::Ipv6Addr;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

fn forwarding_datapath(cpu: u32) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
    dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    dp
}

fn flow_packet(flow: u32) -> PacketBuf {
    build_ipv6_udp_packet(
        addr(&format!("2001:db8::{:x}", flow + 1)),
        addr("2001:db8:f::1"),
        (1024 + flow % 40_000) as u16,
        5001,
        &[0u8; 32],
        64,
    )
}

#[test]
fn pool_steady_state_does_not_allocate_per_packet() {
    const WORKERS: u32 = 4;
    const PACKETS_PER_ROUND: usize = 1024;
    const MEASURED_ROUNDS: usize = 8;
    // Flush barriers create reply channels and report vectors; everything
    // else must be reuse. The budget is generous per **round** and tiny
    // per packet — a single stray per-packet allocation would blow through
    // it 20× over.
    const ROUND_BUDGET: u64 = 256;

    let config = PoolConfig {
        workers: WORKERS,
        batch_size: 32,
        queue_depth: 2 * PACKETS_PER_ROUND,
        ..Default::default()
    };
    let mut pool = WorkerPool::new(config, forwarding_datapath);

    // --- Phase 1: owned pre-built buffers through the descriptor ring ---

    // Pre-build every measured packet so the measurement sees only the
    // pool's own work, then warm the pool up (scratch buffers, batch and
    // verdict capacities, staging, the recycling arena).
    let mut rounds: Vec<Vec<PacketBuf>> =
        (0..MEASURED_ROUNDS).map(|_| (0..PACKETS_PER_ROUND as u32).map(flow_packet).collect()).collect();
    for _ in 0..3 {
        let warmup: Vec<PacketBuf> = (0..PACKETS_PER_ROUND as u32).map(flow_packet).collect();
        assert_eq!(pool.enqueue_all(warmup), PACKETS_PER_ROUND);
        let report = pool.flush();
        assert_eq!(report.run.processed as usize, PACKETS_PER_ROUND);
    }

    let before = global_allocations();
    let mut processed = 0u64;
    for round in rounds.drain(..) {
        assert_eq!(pool.enqueue_all(round), PACKETS_PER_ROUND);
        processed += pool.flush().run.processed;
    }
    let allocations = global_allocations() - before;

    assert_eq!(processed as usize, MEASURED_ROUNDS * PACKETS_PER_ROUND);
    assert_eq!(pool.rejected(), 0);
    let budget = MEASURED_ROUNDS as u64 * ROUND_BUDGET;
    assert!(
        allocations <= budget,
        "pool steady state allocated {allocations} times over {MEASURED_ROUNDS} rounds \
         ({PACKETS_PER_ROUND} packets each); budget {budget} — the per-packet path is allocating"
    );

    // --- Phase 2: the zero-allocation ingestion loop (PR-4 gate) ---

    // Frames enter as byte slices: every packet buffer must come out of
    // the free-ring-fed arena. The first bytes-path call provisions the
    // arena to the pool's in-flight bound (all minting happens here, in
    // the unmeasured warm-up), which makes the flat-mint assertion below
    // deterministic rather than scheduling-dependent. Pre-render the
    // frames outside the measurement.
    let frames: Vec<Vec<u8>> =
        (0..PACKETS_PER_ROUND as u32).map(|f| flow_packet(f).data().to_vec()).collect();
    for _ in 0..3 {
        assert_eq!(
            pool.enqueue_bytes_all(0, frames.iter().map(Vec::as_slice)),
            PACKETS_PER_ROUND,
            "warm-up round fits the rings"
        );
        pool.flush();
    }
    let minted_after_warmup = pool.buf_pool().allocations();

    let before = global_allocations();
    let mut processed = 0u64;
    for _ in 0..MEASURED_ROUNDS {
        assert_eq!(pool.enqueue_bytes_all(0, frames.iter().map(Vec::as_slice)), PACKETS_PER_ROUND);
        processed += pool.flush().run.processed;
    }
    let allocations = global_allocations() - before;

    assert_eq!(processed as usize, MEASURED_ROUNDS * PACKETS_PER_ROUND);
    assert_eq!(pool.rejected(), 0);
    assert_eq!(
        pool.buf_pool().allocations(),
        minted_after_warmup,
        "steady-state ingestion minted fresh packet buffers instead of recycling"
    );
    assert!(
        allocations <= budget,
        "recycled ingestion allocated {allocations} times over {MEASURED_ROUNDS} rounds \
         ({PACKETS_PER_ROUND} packets each); budget {budget} — the dispatch → ring → worker → \
         free-ring loop is allocating"
    );

    // --- Phase 3: the multi-tenant gate (PR-5) ---

    // Registering the tenant allocates (datapath forks, counter row, the
    // arena's re-provision to the larger in-flight bound) — all of it
    // one-time cost outside the measurement.
    let tenant_b = pool.add_tenant(TenantSpec::build_with(|cpu| {
        let mut dp = Seg6Datapath::new(addr("fc00::2")).on_cpu(cpu);
        dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(2)]);
        dp
    }));
    let half = PACKETS_PER_ROUND / 2;
    for _ in 0..3 {
        // Warm-up: both tenants' paths touch every reused buffer once.
        assert_eq!(pool.enqueue_bytes_all(0, frames[..half].iter().map(Vec::as_slice)), half);
        assert_eq!(
            pool.tenant(tenant_b).enqueue_bytes_all(0, frames[half..].iter().map(Vec::as_slice)),
            PACKETS_PER_ROUND - half
        );
        pool.flush();
    }
    let minted_after_tenants = pool.buf_pool().allocations();

    let before = global_allocations();
    let mut processed = 0u64;
    for _ in 0..MEASURED_ROUNDS {
        // Interleave the tenants: tenant runs of both kinds in every
        // batch, rings and arena shared.
        assert_eq!(pool.enqueue_bytes_all(0, frames[..half].iter().map(Vec::as_slice)), half);
        assert_eq!(
            pool.tenant(tenant_b).enqueue_bytes_all(0, frames[half..].iter().map(Vec::as_slice)),
            PACKETS_PER_ROUND - half
        );
        processed += pool.flush().run.processed;
    }
    let allocations = global_allocations() - before;

    assert_eq!(processed as usize, MEASURED_ROUNDS * PACKETS_PER_ROUND);
    assert_eq!(pool.rejected(), 0);
    assert_eq!(
        pool.buf_pool().allocations(),
        minted_after_tenants,
        "multi-tenant steady state minted fresh packet buffers instead of recycling"
    );
    assert!(
        allocations <= budget,
        "multi-tenant ingestion allocated {allocations} times over {MEASURED_ROUNDS} rounds \
         ({PACKETS_PER_ROUND} packets each, 2 tenants); budget {budget} — tenant stamping, \
         tenant-run splitting or the per-tenant counters are allocating"
    );

    // Both tenants really ran: the per-tenant rows carry the split.
    let snap = pool.counters().snapshot();
    assert!(snap.tenants[0].totals().processed > 0);
    assert!(snap.tenants[1].totals().processed > 0);
    pool.shutdown();
}
