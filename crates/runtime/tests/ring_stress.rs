//! Two-thread stress test of the lock-free SPSC ring: a real producer
//! thread and a real consumer thread move millions of descriptors through
//! a small ring with randomized burst sizes, proving no descriptor is
//! lost, duplicated, or reordered — the soundness claim of the `ring`
//! module's unsafe slot accesses, checked empirically under genuine
//! concurrency and constant wrap-around.

use seg6_runtime::ring::spsc_ring;
use std::thread;

/// Deterministic xorshift64* — no external RNG dependency, same schedule
/// every run (the *thread interleaving* provides the nondeterminism the
/// test is after).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Drives `total` sequence-numbered descriptors through a ring of
/// `capacity` slots, with bursts of up to `max_burst`, and asserts the
/// consumer observes exactly `0..total` in order.
fn stress(total: u64, capacity: usize, max_burst: usize, seed: u64) {
    let (mut tx, mut rx) = spsc_ring::<u64>(capacity);
    let producer = thread::spawn(move || {
        let mut rng = Rng(seed | 1);
        let mut staging: Vec<u64> = Vec::with_capacity(max_burst);
        let mut next = 0u64;
        let mut publishes = 0u64;
        while next < total || !staging.is_empty() {
            let burst = 1 + (rng.next() as usize % max_burst);
            while staging.len() < burst && next < total {
                staging.push(next);
                next += 1;
            }
            let sent = tx.enqueue_burst(&mut staging);
            if sent == 0 {
                // Ring full: let the consumer run. (The pool parks here;
                // the stress test just yields to keep the pressure up.)
                thread::yield_now();
            } else {
                publishes += 1;
            }
        }
        publishes
    });
    let consumer = thread::spawn(move || {
        let mut rng = Rng(seed.wrapping_mul(31) | 1);
        let mut out: Vec<u64> = Vec::with_capacity(max_burst);
        let mut expected = 0u64;
        let mut empty_polls = 0u64;
        while expected < total {
            let burst = 1 + (rng.next() as usize % max_burst);
            out.clear();
            if rx.dequeue_burst(&mut out, burst) == 0 {
                empty_polls += 1;
                if empty_polls.is_multiple_of(64) {
                    thread::yield_now();
                }
                continue;
            }
            for v in &out {
                assert_eq!(*v, expected, "descriptor lost, duplicated or reordered");
                expected += 1;
            }
        }
        assert!(rx.is_empty(), "descriptors left behind after the full sequence");
        expected
    });
    let publishes = producer.join().expect("producer thread");
    let received = consumer.join().expect("consumer thread");
    assert_eq!(received, total);
    assert!(publishes <= total, "each publish moved at least one descriptor");
}

/// The headline run: millions of descriptors through a 256-slot ring —
/// thousands of full wrap-arounds — with bursts up to 64 on both sides.
#[test]
fn two_thread_stress_millions_of_descriptors_fifo_no_loss() {
    stress(3_000_000, 256, 64, 0x5eed_cafe);
}

/// A tiny ring maximises full/empty boundary transitions: every slot
/// handover exercises the capacity check and the cached-index refresh.
#[test]
fn two_thread_stress_tiny_ring() {
    stress(500_000, 2, 8, 0x0dd_ba11);
}

/// Single-descriptor pushes against bursty consumption (and vice versa is
/// covered above): the mixed-mode path the pool's per-packet `enqueue`
/// takes while a worker drains in bursts.
#[test]
fn two_thread_stress_single_push_burst_pop() {
    let (mut tx, mut rx) = spsc_ring::<u64>(64);
    const TOTAL: u64 = 1_000_000;
    let producer = thread::spawn(move || {
        let mut next = 0u64;
        while next < TOTAL {
            match tx.try_push(next) {
                Ok(()) => next += 1,
                Err(_) => thread::yield_now(),
            }
        }
    });
    let consumer = thread::spawn(move || {
        let mut out: Vec<u64> = Vec::with_capacity(128);
        let mut expected = 0u64;
        while expected < TOTAL {
            out.clear();
            if rx.dequeue_burst(&mut out, 128) == 0 {
                thread::yield_now();
                continue;
            }
            for v in &out {
                assert_eq!(*v, expected);
                expected += 1;
            }
        }
    });
    producer.join().expect("producer thread");
    consumer.join().expect("consumer thread");
}
