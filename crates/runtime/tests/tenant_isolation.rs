//! Tenant-isolation regression: a randomized two-tenant run over one
//! shared pool, proving that
//!
//! 1. per-tenant FIBs and SID tables never cross-route — every output's
//!    verdict matches the tenant whose handle enqueued it, for arbitrary
//!    interleavings of the two tenants' traffic;
//! 2. per-tenant admission counters and per-tenant live-counter rows sum
//!    exactly to the global per-shard view ([`WorkerPool::shard_stats`])
//!    and to the flush totals at quiet points.
//!
//! Both tenants see the *same* packets; what distinguishes them is only
//! their routing context: tenant A routes everything out of interfaces
//! 10/11, tenant B out of 20/21, and only tenant B installs a local SID —
//! so a cross-routed packet is visible either as a wrong interface or as a
//! seg6local invocation on the wrong tenant.

use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
use netpkt::srh::SegmentRoutingHeader;
use netpkt::PacketBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seg6_core::{Nexthop, Seg6Datapath, Seg6LocalAction, Verdict};
use seg6_runtime::{Ingress, PoolConfig, ShardStats, TenantId, TenantQos, TenantSpec, WorkerPool};
use std::net::Ipv6Addr;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

const SID: &str = "fc00::e1";

/// Tenant A: plain routes on interfaces 10 (general) and 11 (fc00::/16).
/// No SID — SRv6 packets towards `SID` are *forwarded* like any other
/// fc00:: destination.
fn tenant_a(cpu: u32) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(addr("fd00::a")).on_cpu(cpu);
    dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(10)]);
    dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(11)]);
    dp
}

/// Tenant B: the same prefixes on interfaces 20/21, plus an `End` SID at
/// `SID` — SRv6 packets towards it are seg6local-processed and leave
/// towards the *next* segment.
fn tenant_b(cpu: u32) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(addr("fd00::b")).on_cpu(cpu);
    dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(20)]);
    dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(21)]);
    dp.add_local_sid(format!("{SID}/128").parse().unwrap(), Seg6LocalAction::End);
    dp
}

/// Two packet kinds, both enqueueable by either tenant.
fn plain_packet(flow: u32) -> PacketBuf {
    build_ipv6_udp_packet(
        addr(&format!("2001:db8::{:x}", flow + 1)),
        addr("2001:db8:f::1"),
        (1024 + flow % 4096) as u16,
        5001,
        &[0u8; 32],
        64,
    )
}

fn srv6_packet(flow: u32) -> PacketBuf {
    let srh = SegmentRoutingHeader::from_path(netpkt::ipv6::proto::UDP, &[addr(SID), addr("fc00::99")]);
    build_srv6_udp_packet(
        addr(&format!("2001:db8::{:x}", flow + 1)),
        &srh,
        (1024 + flow % 4096) as u16,
        5002,
        &[0u8; 24],
        64,
    )
}

/// The verdict one packet kind must produce per tenant.
fn check_output(tenant: TenantId, srv6: bool, verdict: &Verdict, seg6local: bool) {
    let is_b = tenant != TenantId::DEFAULT;
    match (is_b, srv6) {
        // Tenant A never runs seg6local; everything routes on 10/11.
        (false, _) => {
            assert!(!seg6local, "tenant A executed tenant B's SID");
            assert!(
                matches!(verdict, Verdict::Forward { oif: 10 | 11, .. }),
                "tenant A routed through a foreign FIB: {verdict:?}"
            );
        }
        // Tenant B, plain traffic: its own interfaces.
        (true, false) => {
            assert!(!seg6local);
            assert!(
                matches!(verdict, Verdict::Forward { oif: 20 | 21, .. }),
                "tenant B routed through a foreign FIB: {verdict:?}"
            );
        }
        // Tenant B, SRv6 towards the SID: the End behaviour runs, the
        // next segment (fc00::99) leaves via fc00::/16 → oif 21.
        (true, true) => {
            assert!(seg6local, "tenant B's SID did not execute");
            assert!(
                matches!(verdict, Verdict::Forward { oif: 21, .. }),
                "tenant B's End mis-routed: {verdict:?}"
            );
        }
    }
}

#[test]
fn randomized_two_tenant_run_never_cross_routes() {
    const ROUNDS: usize = 40;
    const PACKETS_PER_ROUND: usize = 256;
    let mut rng = StdRng::seed_from_u64(0x007e_4a11);

    let config = PoolConfig {
        workers: 4,
        batch_size: 8,
        queue_depth: 4 * PACKETS_PER_ROUND,
        collect_outputs: true,
        ..Default::default()
    };
    let mut pool = WorkerPool::new(config, tenant_a);
    let tenant_b_id = pool.add_tenant(TenantSpec::build_with(tenant_b));
    let counters = pool.counters();

    let mut enqueued = [0u64; 2]; // per tenant
    let mut processed = [0u64; 2];
    for round in 0..ROUNDS {
        // A random interleaving: each packet picks a tenant, a kind, and
        // a flow; singles and bursts mix so tenant runs of every length
        // (and batches mixing both tenants) occur.
        for _ in 0..PACKETS_PER_ROUND {
            let tenant = if rng.gen_bool(0.5) { TenantId::DEFAULT } else { tenant_b_id };
            let srv6 = rng.gen_bool(0.3);
            let flow = rng.gen_range(0u32..512);
            let packet = if srv6 { srv6_packet(flow) } else { plain_packet(flow) };
            let accepted = if rng.gen_bool(0.25) {
                pool.tenant(tenant).enqueue(packet)
            } else {
                pool.tenant(tenant).enqueue_all([packet]) == 1
            };
            assert!(accepted, "rings sized for the round never reject");
            enqueued[tenant.index()] += 1;
        }
        let mut report = pool.flush();
        for outputs in report.outputs.iter_mut() {
            for (tenant, skb, bv) in outputs.drain(..) {
                // Recover the packet kind from the wire bytes (an SRH is
                // still present after End — only segments_left moved).
                let srv6 = skb.packet.data()[6] == netpkt::ipv6::proto::ROUTING;
                check_output(tenant, srv6, &bv.verdict, bv.work.seg6local);
                processed[tenant.index()] += 1;
                pool.recycle(skb.into_packet());
            }
        }

        // Quiet point: every accounting plane agrees.
        // 1. Dispatcher per-tenant admission sums to per-shard admission.
        let tenant_total: u64 = pool.tenant_stats().iter().map(|s| s.enqueued).sum();
        let shard_total: u64 = pool.shard_stats().iter().map(|s| s.enqueued).sum();
        assert_eq!(tenant_total, shard_total, "round {round}");
        assert_eq!(pool.tenant_stats()[0], ShardStats { enqueued: enqueued[0], rejected: 0 });
        assert_eq!(pool.tenant_stats()[1], ShardStats { enqueued: enqueued[1], rejected: 0 });
        // 2. Live counter rows: per-tenant × per-shard sums to the global
        //    per-shard cells, and to the dispatcher's view.
        let snap = counters.snapshot();
        for (shard, aggregate) in snap.shards.iter().enumerate() {
            let mut summed = seg6_runtime::ShardSnapshot::default();
            for tenant_row in &snap.tenants {
                summed.accumulate(&tenant_row.shards[shard]);
            }
            assert_eq!(&summed, aggregate, "round {round} shard {shard}");
            assert_eq!(aggregate.as_shard_stats(), pool.shard_stats()[shard]);
        }
        // 3. Per-tenant processed counts match what came back out.
        assert_eq!(snap.tenants[0].totals().processed, processed[0]);
        assert_eq!(snap.tenants[1].totals().processed, processed[1]);
        assert_eq!(snap.processed(), processed[0] + processed[1]);
    }
    assert_eq!(processed[0] + processed[1], (ROUNDS * PACKETS_PER_ROUND) as u64);
    assert!(processed.iter().all(|&n| n > 0), "both tenants saw traffic: {processed:?}");

    // The totals survive shutdown: lifetime worker stats equal the sum of
    // both tenants' rows.
    let totals = pool.shutdown();
    let lifetime: u64 = totals.iter().map(|s| s.processed).sum();
    assert_eq!(lifetime, processed[0] + processed[1]);
}

/// A one-worker pool over `tenant_a` whose drain hook parks the worker
/// until released: the first returned channel fires when the worker enters
/// the hook, dropping the returned sender releases it (later entries pass
/// straight through). Priming one packet and waiting for the `entered`
/// signal leaves the worker stalled with the ring *empty* — the primed
/// packet already counted as processed — so subsequent enqueues fill the
/// ring deterministically, with no race against the consumer.
fn stallable_pool(config: PoolConfig) -> (WorkerPool, mpsc::Receiver<()>, mpsc::Sender<()>) {
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Arc::new(Mutex::new(release_rx));
    let pool = WorkerPool::new(config, move |cpu| {
        let entered_tx = entered_tx.clone();
        let release_rx = Arc::clone(&release_rx);
        seg6_runtime::ShardSetup::new(tenant_a(cpu)).with_drain(Box::new(move |_| {
            let _ = entered_tx.send(());
            let _ = release_rx.lock().unwrap().recv();
        }))
    });
    (pool, entered_rx, release_tx)
}

/// The per-tenant backpressure split is exact: when a ring fills, each
/// tenant's rejected count matches exactly what it failed to enqueue.
#[test]
fn per_tenant_rejection_accounting_is_exact() {
    let config = PoolConfig { workers: 1, batch_size: 1, queue_depth: 8, ..Default::default() };
    let (mut pool, entered_rx, release_tx) = stallable_pool(config);
    let b = pool.add_tenant(TenantSpec::build_with(tenant_b));

    // Stall the worker, then alternate tenants into the 8-slot ring: 4 A
    // + 4 B fit, the next 3 A and 2 B are rejected.
    assert!(pool.enqueue(plain_packet(0)));
    entered_rx.recv().expect("worker stalled in the drain");
    for flow in 0..4 {
        assert!(pool.enqueue(plain_packet(flow + 1)));
        assert!(pool.tenant(b).enqueue(plain_packet(flow + 100)));
    }
    for flow in 0..3 {
        assert!(!pool.enqueue(plain_packet(flow + 50)));
    }
    for flow in 0..2 {
        assert!(!pool.tenant(b).enqueue(plain_packet(flow + 150)));
    }
    assert_eq!(pool.tenant_stats()[0], ShardStats { enqueued: 5, rejected: 3 });
    assert_eq!(pool.tenant_stats()[1], ShardStats { enqueued: 4, rejected: 2 });
    assert_eq!(pool.shard_stats()[0], ShardStats { enqueued: 9, rejected: 5 });
    // The live rows agree, mid-run, without a barrier.
    let snap = pool.counters().snapshot();
    assert_eq!(snap.tenants[0].totals().as_shard_stats(), pool.tenant_stats()[0]);
    assert_eq!(snap.tenants[1].totals().as_shard_stats(), pool.tenant_stats()[1]);

    drop(release_tx);
    let report = pool.flush();
    assert_eq!(report.run.processed, 9, "exactly the accepted packets were processed");
}

/// The adversarial noisy-neighbor run the QoS redesign exists for: a
/// flooding tenant held to half the ring by its quota, against a quiet
/// weight-4 tenant, cannot push the quiet tenant's admitted throughput or
/// flush position outside a 2× envelope of its run-alone baseline — even
/// when every quiet packet arrives *behind* the whole admitted flood.
#[test]
fn qos_bounds_the_quiet_tenant_under_a_noisy_neighbor() {
    const RING: usize = 256;
    const FLOOD: u32 = 512;
    const QUIET: usize = 64;
    let config = || PoolConfig {
        workers: 1,
        batch_size: 32,
        queue_depth: RING,
        collect_outputs: true,
        ..Default::default()
    };

    // Run-alone baseline: the quiet tenant with the worker to itself.
    let (baseline_accepted, baseline_last) = {
        let mut pool = WorkerPool::new(config(), tenant_a);
        let quiet = pool.add_tenant(TenantSpec::build_with(tenant_b).weight(4));
        let accepted = pool.tenant(quiet).enqueue_all((0..QUIET as u32).map(plain_packet));
        let report = pool.flush();
        let last = report.outputs[0].iter().rposition(|(t, _, _)| *t == quiet).map_or(0, |i| i + 1);
        pool.shutdown();
        (accepted, last)
    };
    assert_eq!(baseline_accepted, QUIET);
    assert_eq!(baseline_last, QUIET);

    // Contended: the default tenant floods 8× the quiet tenant's load
    // into a stalled worker's ring. The flooder is quota'd to half the
    // ring; the quiet tenant is unquota'd (its admission path stays the
    // pre-QoS one) and outweighed 4:1 in the scheduler.
    let (mut pool, entered_rx, release_tx) = stallable_pool(config());
    pool.update_tenant_qos(
        TenantId::DEFAULT,
        TenantQos { weight: 1, ring_quota: Some(0.5), cost_budget: None },
    );
    let quiet = pool.add_tenant(TenantSpec::build_with(tenant_b).weight(4));

    assert!(pool.enqueue(plain_packet(0)));
    entered_rx.recv().expect("worker stalled in the drain");
    assert_eq!(pool.enqueue_all((0..FLOOD).map(plain_packet)), RING / 2, "quota caps the flood");
    let accepted = pool.tenant(quiet).enqueue_all((0..QUIET as u32).map(plain_packet));

    // Admission envelope: the flood cannot displace a single quiet
    // packet, and every shed lands on the flooder's `rejected` row — the
    // budget counter is untouched (nobody here is cost-metered).
    assert_eq!(accepted, QUIET, "quota'd flooder cannot displace the quiet tenant");
    assert_eq!(
        pool.tenant_stats()[0],
        ShardStats { enqueued: 1 + RING as u64 / 2, rejected: u64::from(FLOOD) - RING as u64 / 2 }
    );
    assert_eq!(pool.tenant_stats()[1], ShardStats { enqueued: QUIET as u64, rejected: 0 });
    assert_eq!(pool.rejected_over_budget(), 0);

    drop(release_tx);
    let report = pool.flush();
    assert_eq!(report.run.processed as usize, 1 + RING / 2 + QUIET);

    // Scheduling envelope: deficit-round-robin with weight 4 drains the
    // whole quiet backlog within 2× its run-alone flush position. The
    // pre-QoS arrival-order scheduler would emit the last quiet packet
    // dead last, at position 193 — behind the primed packet and all 128
    // admitted flood packets.
    let outputs = &report.outputs[0];
    assert_eq!(outputs.iter().filter(|(t, _, _)| *t == quiet).count(), QUIET);
    let last = outputs.iter().rposition(|(t, _, _)| *t == quiet).map_or(0, |i| i + 1);
    assert!(
        last <= 2 * baseline_last,
        "quiet tenant's last packet flushed at position {last}, beyond 2×{baseline_last}"
    );
    pool.shutdown();
}

/// The companion failure mode the envelope test above forbids: with the
/// default knobs (no quota, weight 1 — exactly the pre-QoS configuration)
/// the same flood owns the whole ring and the quiet tenant is starved
/// outright. If QoS admission ever regresses to this, the envelope test
/// fails; this test pins the unprotected behaviour so the contrast stays
/// observable.
#[test]
fn default_knobs_let_the_flood_starve_the_quiet_tenant() {
    const RING: usize = 256;
    let config = PoolConfig { workers: 1, batch_size: 32, queue_depth: RING, ..Default::default() };
    let (mut pool, entered_rx, release_tx) = stallable_pool(config);
    let quiet = pool.add_tenant(TenantSpec::build_with(tenant_b));

    assert!(pool.enqueue(plain_packet(0)));
    entered_rx.recv().expect("worker stalled in the drain");
    assert_eq!(pool.enqueue_all((0..512u32).map(plain_packet)), RING);
    let accepted = pool.tenant(quiet).enqueue_all((0..64u32).map(plain_packet));
    assert_eq!(accepted, 0, "an unquota'd flood owns the whole ring");
    assert_eq!(pool.tenant_stats()[1], ShardStats { enqueued: 0, rejected: 64 });

    drop(release_tx);
    let report = pool.flush();
    assert_eq!(report.run.processed as usize, 1 + RING);
    pool.shutdown();
}

/// Cost-budget admission is exact and meters *measured* work: base tokens
/// are spent per packet at admission, the workers' surcharge (here End
/// behaviours at `COST_SEG6LOCAL` over base) is trued up at the next
/// publish, sheds land only on the over-budget counters, and one
/// shard-clock second refills one second's rate.
#[test]
fn cost_budget_sheds_exactly_and_refills_on_the_shard_clock() {
    let config = PoolConfig { workers: 1, batch_size: 32, queue_depth: 1024, ..Default::default() };
    let mut pool = WorkerPool::new(config, tenant_a);
    let b = pool.add_tenant(TenantSpec::build_with(tenant_b).cost_budget(30));

    // Shard clock 0: ten End-SID packets spend 10 base tokens at
    // admission, leaving 20 of the 30-token burst.
    assert_eq!(pool.tenant(b).enqueue_all((0..10).map(srv6_packet)), 10);
    let report = pool.flush();
    assert_eq!(report.run.processed, 10);

    // Each End packet's measured work_cost is COST_BASE + COST_SEG6LOCAL
    // = 3 tokens: the workers charged 30 for work admission priced at 10.
    // The 20-token surcharge is debited at the next publish, emptying the
    // bucket — all 25 plain packets shed over budget, none as `rejected`.
    assert_eq!(pool.tenant(b).enqueue_all((0..25).map(plain_packet)), 0);
    assert_eq!(pool.tenant_over_budget(b), 25);
    assert_eq!(pool.rejected_over_budget(), 25);
    assert_eq!(pool.rejected(), 0, "budget sheds are not backpressure");
    assert_eq!(pool.tenant_stats()[1], ShardStats { enqueued: 10, rejected: 0 });

    // The unmetered default tenant is untouched by b's empty bucket.
    assert!(pool.enqueue(plain_packet(7)));

    // One shard-clock second later the bucket holds one second's rate
    // again: 25 plain packets admit (spending 25 of the 30 tokens).
    for flow in 0..25 {
        assert!(pool.tenant(b).enqueue_at(1_000_000_000, plain_packet(flow)));
    }
    assert_eq!(pool.tenant_over_budget(b), 25, "no further sheds after the refill");
    let report = pool.flush();
    assert_eq!(report.run.processed, 26);

    // The live rows carry the same exact split: 25 over-budget sheds, and
    // 3×10 + 1×25 = 55 cost units charged for the processed work.
    let snap = pool.counters().snapshot();
    assert_eq!(snap.tenants[1].totals().rejected_over_budget, 25);
    assert_eq!(snap.tenants[1].totals().cost, 55);
    assert_eq!(snap.rejected_over_budget(), 25);
    pool.shutdown();
}
