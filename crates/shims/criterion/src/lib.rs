//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements a
//! small, API-compatible subset of Criterion sufficient for the workspace's
//! benches: benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` + `Bencher::iter`, optional
//! [`Throughput`] reporting and the `criterion_group!` / `criterion_main!`
//! macros. Timing is a straightforward warm-up-then-measure loop over a
//! monotonic clock; results are printed as `group/name  time: [... ns]`
//! lines (plus a derived rate when a throughput is configured).
//!
//! Two environment knobs support `scripts/bench-smoke.sh` (a non-Criterion
//! extension):
//!
//! * `CRITERION_SMOKE_MS=<ms>` overrides every bench's warm-up (to 1/5 of
//!   the value) and measurement window, so a whole suite runs in seconds
//!   with tiny iteration counts;
//! * `CRITERION_JSON=1` additionally emits one machine-readable
//!   `BENCH_JSON {...}` line per bench, for snapshotting into
//!   `BENCH_*.json` files.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How to convert measured time into a rate, mirroring
/// `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Benchmark identifier combining a function name and a parameter,
/// mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    /// The final label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, measuring nothing.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Estimate a batch size from the warm-up rate so the clock is read
        // far less often than the routine runs.
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((10_000.0 / per_iter.max(1.0)).ceil() as u64).clamp(1, 1 << 20);
        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count. Accepted for API compatibility; the
    /// shim sizes batches from the measurement window instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets how long to warm the routine up before measuring.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets how long to measure for.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Declares the work performed per iteration, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its result.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        if !self.criterion.matches(&label) {
            return self;
        }
        let (warm_up, measurement) = match smoke_window_ms() {
            Some(ms) => (Duration::from_millis((ms / 5).max(1)), Duration::from_millis(ms.max(1))),
            None => (self.warm_up, self.measurement),
        };
        let mut bencher = Bencher { warm_up, measurement, mean_ns: 0.0, iters: 0 };
        f(&mut bencher);
        let mut line = format!("{label:<55} time: [{:>12.1} ns/iter]", bencher.mean_ns);
        let mut rate = None;
        if let Some(tp) = self.throughput {
            let (amount, unit) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let per_s = amount * 1e9 / bencher.mean_ns.max(f64::MIN_POSITIVE);
            line.push_str(&format!("  thrpt: [{per_s:>14.0} {unit}]"));
            rate = Some((per_s, unit));
        }
        println!("{line}");
        if std::env::var_os("CRITERION_JSON").is_some() {
            let (per_s, unit) = rate.unwrap_or((0.0, ""));
            // Provenance stamped by the bench process itself, not the
            // wrapper script: the parallelism actually available to the
            // run, and the harness-supplied wall-clock tag (BENCH_UTC) so
            // all rows of one invocation share a timestamp.
            let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
            let utc = std::env::var("BENCH_UTC").unwrap_or_default();
            println!(
                "BENCH_JSON {{\"name\":\"{label}\",\"ns_per_iter\":{:.1},\"iters\":{},\
                 \"throughput_per_s\":{per_s:.0},\"throughput_unit\":\"{unit}\",\
                 \"host_parallelism\":{parallelism},\"utc\":\"{utc}\"}}",
                bencher.mean_ns, bencher.iters
            );
        }
        self
    }

    /// Ends the group (separator line, for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The `CRITERION_SMOKE_MS` override, if set to a valid duration.
fn smoke_window_ms() -> Option<u64> {
    std::env::var("CRITERION_SMOKE_MS").ok()?.parse().ok()
}

/// The top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards its trailing arguments; the first
        // non-flag argument is a substring filter, as in real Criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.benchmark_group(id.clone()).bench_function("base", f);
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = Criterion { filter: Some("other".into()) };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("skipped", |_b| ran = true);
        assert!(!ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
