//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! shim re-exposes the subset of the `parking_lot` API the workspace uses
//! (`Mutex::lock`, `RwLock::read`/`write`, all non-poisoning) on top of
//! `std::sync`. Poisoning is deliberately swallowed — `parking_lot` locks
//! never poison, and the workspace relies on that to keep lock guards
//! infallible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot` (non-poisoning) API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the `parking_lot` (non-poisoning) API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1u8]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn locks_do_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
