//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable PRNG (`rngs::StdRng`) and the subset
//! of the `Rng`/`SeedableRng` traits the simulator uses (`gen_bool`,
//! `gen_range` over integer ranges). The generator is SplitMix64 — fast,
//! well distributed, and, unlike the real `StdRng`, stable across versions,
//! which suits a discrete-event simulator that wants reproducible runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range!(u64, u32, usize);

/// The random-number-generation trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of precision, like the real implementation.
        let scale = (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) < p * scale
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

/// The seeding trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=10);
            assert!((5..=10).contains(&v));
            let w = rng.gen_range(0u64..=0);
            assert_eq!(w, 0);
            let x = rng.gen_range(3u32..7);
            assert!((3..7).contains(&x));
        }
    }
}
