//! Host applications running on simulated nodes.
//!
//! The paper's experiments need more than packet forwarding: iperf3/nttcp
//! style sources and sinks, the user-space daemons of §4.1 and §4.2, and
//! the TCP endpoints of the hybrid-access study. They all plug into the
//! simulator through the [`Application`] trait: the simulator calls them
//! when a packet is delivered to their node or when one of their timers
//! fires, and they respond by emitting packets and scheduling more timers
//! through [`AppApi`].

use netpkt::PacketBuf;

/// Handle an application uses to interact with the simulator during a
/// callback.
pub struct AppApi<'a> {
    /// Current simulation time in nanoseconds.
    pub now_ns: u64,
    /// Node the application runs on.
    pub node_id: usize,
    pub(crate) outbox: &'a mut Vec<(u64, PacketBuf)>,
    pub(crate) timers: &'a mut Vec<(u64, u64)>,
}

impl<'a> AppApi<'a> {
    /// Creates a detached API backed by caller-owned buffers. Intended for
    /// unit-testing applications outside a running simulator: sends land in
    /// `outbox` as `(time, packet)` pairs and timers in `timers` as
    /// `(time, timer_id)` pairs.
    pub fn detached(
        now_ns: u64,
        node_id: usize,
        outbox: &'a mut Vec<(u64, PacketBuf)>,
        timers: &'a mut Vec<(u64, u64)>,
    ) -> Self {
        AppApi { now_ns, node_id, outbox, timers }
    }

    /// Sends `packet` from this node (it enters the node's own datapath, as
    /// a locally generated packet would).
    pub fn send(&mut self, packet: PacketBuf) {
        self.outbox.push((self.now_ns, packet));
    }

    /// Sends `packet` after `delay_ns` nanoseconds.
    pub fn send_after(&mut self, delay_ns: u64, packet: PacketBuf) {
        self.outbox.push((self.now_ns + delay_ns, packet));
    }

    /// Schedules `timer_id` to fire after `delay_ns` nanoseconds.
    pub fn schedule_timer(&mut self, delay_ns: u64, timer_id: u64) {
        self.timers.push((self.now_ns + delay_ns, timer_id));
    }
}

/// A host application attached to a node.
pub trait Application: Send {
    /// Called when a packet is delivered to the node the application runs
    /// on.
    fn on_packet(&mut self, api: &mut AppApi<'_>, packet: &PacketBuf);

    /// Called when a timer previously scheduled through
    /// [`AppApi::schedule_timer`] fires.
    fn on_timer(&mut self, api: &mut AppApi<'_>, timer_id: u64);

    /// Called once when the simulation starts, so the application can seed
    /// its first timers or packets.
    fn on_start(&mut self, _api: &mut AppApi<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_api_records_sends_and_timers() {
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let mut api = AppApi::detached(100, 3, &mut outbox, &mut timers);
        api.send(PacketBuf::from_slice(&[1]));
        api.send_after(50, PacketBuf::from_slice(&[2]));
        api.schedule_timer(10, 7);
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].0, 100);
        assert_eq!(outbox[1].0, 150);
        assert_eq!(timers, vec![(110, 7)]);
    }
}
