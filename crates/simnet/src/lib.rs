//! # simnet — a discrete-event simulator for the SRv6 eBPF lab
//!
//! The paper evaluates its kernel extension on two physical setups
//! (Figure 1): a three-server chain with 10 Gbps NICs for the forwarding
//! microbenchmarks, and a hybrid-access topology with a Turris Omnia CPE,
//! an aggregation box and `tc netem`-emulated xDSL/LTE links. Neither is
//! available to this reproduction, so this crate provides the substitute:
//! a deterministic discrete-event simulator whose nodes run the real
//! `seg6-core` datapath (including `End.BPF` programs on the `ebpf-vm`),
//! and whose links model bandwidth, propagation delay, jitter, loss and
//! bounded queues.
//!
//! * [`node`] — nodes: a `Seg6Datapath`, a calibrated CPU cost model
//!   ([`node::CpuProfile`]), UDP sinks and attached applications;
//! * [`link`] — links and the netem-style impairment model;
//! * [`app`] — the [`app::Application`] trait host programs (TCP endpoints,
//!   measurement daemons) implement;
//! * [`sim`] — the event loop itself.
//!
//! ## Example: the paper's setup 1 in five lines per node
//!
//! ```
//! use simnet::{LinkConfig, Simulator};
//! use seg6_core::Nexthop;
//! use netpkt::packet::build_ipv6_udp_packet;
//!
//! let mut sim = Simulator::new(7);
//! let s1 = sim.add_node("S1", "fc00::a1".parse().unwrap());
//! let s2 = sim.add_node("S2", "fc00::a2".parse().unwrap());
//! sim.connect(s1, s2, LinkConfig::lab_10g());
//! sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
//!
//! let pkt = build_ipv6_udp_packet(
//!     "fc00::a1".parse().unwrap(),
//!     "fc00::a2".parse().unwrap(),
//!     1000, 5001, &[0u8; 64], 64,
//! );
//! sim.inject_at(0, s1, pkt);
//! sim.run_to_completion();
//! assert_eq!(sim.node(s2).sink(5001).packets, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod link;
pub mod node;
pub mod sim;

pub use app::{AppApi, Application};
pub use link::{Link, LinkConfig, LinkDirectionState, NS_PER_SEC};
pub use node::{CpuProfile, Node, PacketWork, SinkStats};
pub use sim::{SimStats, Simulator};
