//! Links between nodes: bandwidth, propagation delay, and a netem-style
//! impairment model (jitter, loss, extra delay, bounded queue).
//!
//! The paper's experiments depend on link characteristics twice: the lab's
//! 10 Gbps links of setup 1 (§3.2) and the emulated hybrid access links of
//! setup 2 (§4.2), where `tc netem` limits one path to 50 Mbps / 30 ms ± 5 ms
//! and the other to 30 Mbps / 5 ms ± 2 ms. [`LinkConfig`] models both.

/// Nanoseconds per second, for rate computations.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// Configuration of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Uniform jitter added to the propagation delay, in nanoseconds
    /// (a sample in `[-jitter_ns, +jitter_ns]` is drawn per packet).
    pub jitter_ns: u64,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Transmit queue capacity in bytes; packets that would have to wait
    /// longer than `queue_bytes * 8 / bandwidth` are dropped (tail drop).
    pub queue_bytes: u64,
}

impl LinkConfig {
    /// A link with the given rate (bits per second) and one-way delay in
    /// milliseconds, no jitter, no loss and a 256 KiB queue.
    pub fn new(bandwidth_bps: u64, delay_ms: u64) -> Self {
        LinkConfig {
            bandwidth_bps,
            delay_ns: delay_ms * 1_000_000,
            jitter_ns: 0,
            loss: 0.0,
            queue_bytes: 256 * 1024,
        }
    }

    /// A 10 Gbps lab link with a 50 µs one-way delay, as in the paper's
    /// setup 1.
    pub fn lab_10g() -> Self {
        LinkConfig {
            bandwidth_bps: 10_000_000_000,
            delay_ns: 50_000,
            jitter_ns: 0,
            loss: 0.0,
            queue_bytes: 1024 * 1024,
        }
    }

    /// A 1 Gbps link with a negligible delay, as between the Turris Omnia
    /// and its neighbours in setup 2.
    pub fn gigabit() -> Self {
        LinkConfig {
            bandwidth_bps: 1_000_000_000,
            delay_ns: 100_000,
            jitter_ns: 0,
            loss: 0.0,
            queue_bytes: 512 * 1024,
        }
    }

    /// Sets the jitter (nanoseconds).
    pub fn with_jitter_ns(mut self, jitter_ns: u64) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Sets the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Sets the queue capacity in bytes.
    pub fn with_queue_bytes(mut self, queue_bytes: u64) -> Self {
        self.queue_bytes = queue_bytes;
        self
    }

    /// Serialisation time of `bytes` on this link, in nanoseconds.
    pub fn serialization_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * 8).saturating_mul(NS_PER_SEC) / self.bandwidth_bps.max(1)
    }

    /// Maximum time a packet may spend waiting in the transmit queue before
    /// being tail-dropped, in nanoseconds.
    pub fn max_queue_wait_ns(&self) -> u64 {
        self.queue_bytes.saturating_mul(8).saturating_mul(NS_PER_SEC) / self.bandwidth_bps.max(1)
    }
}

/// Per-direction transmit state and statistics.
#[derive(Debug, Default, Clone)]
pub struct LinkDirectionState {
    /// Time until which the transmitter is busy.
    pub busy_until_ns: u64,
    /// Extra fixed delay applied on top of the configured propagation delay
    /// (the knob the delay-compensation daemon of §4.2 turns).
    pub extra_delay_ns: u64,
    /// Arrival time of the most recently delivered packet; a link is a FIFO
    /// pipe, so jitter may stretch delays but never reorders packets within
    /// one direction.
    pub last_arrival_ns: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped because the queue was full.
    pub queue_drops: u64,
    /// Packets dropped by the random-loss model.
    pub loss_drops: u64,
}

/// A bidirectional link between two node interfaces.
#[derive(Debug, Clone)]
pub struct Link {
    /// Endpoint A: (node id, interface index on that node).
    pub a: (usize, u32),
    /// Endpoint B: (node id, interface index on that node).
    pub b: (usize, u32),
    /// Configuration of the A→B direction.
    pub config_ab: LinkConfig,
    /// Configuration of the B→A direction.
    pub config_ba: LinkConfig,
    /// State of the A→B direction.
    pub state_ab: LinkDirectionState,
    /// State of the B→A direction.
    pub state_ba: LinkDirectionState,
}

impl Link {
    /// Creates a symmetric link.
    pub fn symmetric(a: (usize, u32), b: (usize, u32), config: LinkConfig) -> Self {
        Link {
            a,
            b,
            config_ab: config,
            config_ba: config,
            state_ab: Default::default(),
            state_ba: Default::default(),
        }
    }

    /// The remote endpoint as seen from `node`, plus whether the direction
    /// of travel is A→B.
    pub fn peer_of(&self, node: usize) -> Option<((usize, u32), bool)> {
        if self.a.0 == node {
            Some((self.b, true))
        } else if self.b.0 == node {
            Some((self.a, false))
        } else {
            None
        }
    }

    /// Configuration for the direction leaving `node`.
    pub fn config_from(&self, node: usize) -> &LinkConfig {
        if self.a.0 == node {
            &self.config_ab
        } else {
            &self.config_ba
        }
    }

    /// State for the direction leaving `node`.
    pub fn state_from_mut(&mut self, node: usize) -> &mut LinkDirectionState {
        if self.a.0 == node {
            &mut self.state_ab
        } else {
            &mut self.state_ba
        }
    }

    /// State for the direction leaving `node` (read-only).
    pub fn state_from(&self, node: usize) -> &LinkDirectionState {
        if self.a.0 == node {
            &self.state_ab
        } else {
            &self.state_ba
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_scales_with_size_and_rate() {
        let cfg = LinkConfig::new(1_000_000_000, 0);
        assert_eq!(cfg.serialization_ns(125), 1_000); // 1000 bits at 1 Gbps = 1 µs
        let slow = LinkConfig::new(50_000_000, 30);
        assert_eq!(slow.serialization_ns(125), 20_000);
        assert_eq!(slow.delay_ns, 30_000_000);
    }

    #[test]
    fn queue_wait_bound_follows_capacity() {
        let cfg = LinkConfig::new(1_000_000_000, 0).with_queue_bytes(125_000);
        assert_eq!(cfg.max_queue_wait_ns(), 1_000_000); // 1 Mbit at 1 Gbps = 1 ms
    }

    #[test]
    fn builders_clamp_loss() {
        let cfg = LinkConfig::new(1, 0).with_loss(1.5);
        assert_eq!(cfg.loss, 1.0);
        let cfg = LinkConfig::new(1, 0).with_loss(-0.5);
        assert_eq!(cfg.loss, 0.0);
    }

    #[test]
    fn peer_and_direction_resolution() {
        let link = Link::symmetric((0, 1), (1, 2), LinkConfig::gigabit());
        assert_eq!(link.peer_of(0), Some(((1, 2), true)));
        assert_eq!(link.peer_of(1), Some(((0, 1), false)));
        assert_eq!(link.peer_of(9), None);
        assert_eq!(link.config_from(0).bandwidth_bps, 1_000_000_000);
    }

    #[test]
    fn presets_match_the_paper_setups() {
        assert_eq!(LinkConfig::lab_10g().bandwidth_bps, 10_000_000_000);
        assert_eq!(LinkConfig::gigabit().bandwidth_bps, 1_000_000_000);
        // The hybrid-access links from §4.2: one-way delay is half the RTT.
        let xdsl = LinkConfig::new(50_000_000, 15).with_jitter_ns(2_500_000);
        let lte = LinkConfig::new(30_000_000, 2).with_jitter_ns(1_000_000);
        assert!(xdsl.delay_ns > lte.delay_ns);
    }
}
