//! Simulated nodes: a CPU model wrapped around a `seg6-core` datapath, host
//! addresses, a UDP sink and attached applications.

use netpkt::ipv6::proto;
use netpkt::{ParsedPacket, UdpHeader};
use seg6_core::{BatchVerdict, Seg6Datapath, Verdict};
use seg6_runtime::{Ingress, PoolConfig, TenantId, TenantQos, WorkerPool};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// Per-packet CPU costs of a node, in nanoseconds.
///
/// The paper's two hardware platforms differ enormously: the Xeon X3440
/// routers of setup 1 forward 610 kpps on one core (≈ 1.6 µs per packet),
/// while the Turris Omnia CPE of setup 2 is interpreter-bound. The profile
/// lets experiments calibrate those costs; EXPERIMENTS.md records the values
/// used for each figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    /// Base cost of forwarding one packet (route lookup + header rewrite).
    pub forward_ns: u64,
    /// Additional cost of a static seg6local action.
    pub seg6local_ns: u64,
    /// Additional cost of an SRv6 encapsulation or decapsulation.
    pub encap_ns: u64,
    /// Additional cost of invoking an eBPF program through the JIT.
    pub bpf_jit_ns: u64,
    /// Additional cost of invoking an eBPF program through the interpreter.
    pub bpf_interp_ns: u64,
    /// Per-byte copy cost (dominates for large payloads on slow CPUs).
    pub per_byte_ns_x1000: u64,
    /// Whether this node's eBPF programs run through the JIT (the Turris
    /// Omnia of §4.2 cannot, because of the ARM32 JIT bug the paper hit).
    pub jit_enabled: bool,
}

impl CpuProfile {
    /// A fast x86 server core (≈ 610 kpps of plain forwarding, §3.2).
    pub fn xeon() -> Self {
        CpuProfile {
            forward_ns: 1_500,
            seg6local_ns: 150,
            encap_ns: 250,
            bpf_jit_ns: 120,
            bpf_interp_ns: 600,
            per_byte_ns_x1000: 60, // 0.06 ns per byte
            jit_enabled: true,
        }
    }

    /// The 1.6 GHz ARMv7 Turris Omnia CPE (§4.2), with the JIT disabled as
    /// in the paper (ARM32 JIT bug).
    pub fn turris_omnia() -> Self {
        CpuProfile {
            forward_ns: 6_200,
            seg6local_ns: 900,
            encap_ns: 1_500,
            bpf_jit_ns: 1_200,
            bpf_interp_ns: 5_800,
            per_byte_ns_x1000: 1_800, // 1.8 ns per byte
            jit_enabled: false,
        }
    }

    /// An effectively infinite CPU, for experiments that only study links.
    pub fn unconstrained() -> Self {
        CpuProfile {
            forward_ns: 0,
            seg6local_ns: 0,
            encap_ns: 0,
            bpf_jit_ns: 0,
            bpf_interp_ns: 0,
            per_byte_ns_x1000: 0,
            jit_enabled: true,
        }
    }

    /// Cost of one packet given what the datapath did with it.
    pub fn cost_ns(&self, packet_len: usize, work: &PacketWork) -> u64 {
        let mut cost = self.forward_ns;
        if work.seg6local {
            cost += self.seg6local_ns;
        }
        if work.encap_or_decap {
            cost += self.encap_ns;
        }
        if work.bpf {
            cost += if self.jit_enabled { self.bpf_jit_ns } else { self.bpf_interp_ns };
        }
        cost + (packet_len as u64 * self.per_byte_ns_x1000) / 1000
    }
}

/// What the datapath did to a packet, derived from its statistics deltas.
#[derive(Debug, Default, Clone, Copy)]
pub struct PacketWork {
    /// A seg6local action ran.
    pub seg6local: bool,
    /// An encapsulation, SRH insertion or decapsulation happened.
    pub encap_or_decap: bool,
    /// An eBPF program ran.
    pub bpf: bool,
}

/// Statistics of a UDP sink (one entry per destination port).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SinkStats {
    /// Datagrams received.
    pub packets: u64,
    /// UDP payload bytes received.
    pub payload_bytes: u64,
    /// Time the last datagram arrived, in nanoseconds.
    pub last_arrival_ns: u64,
    /// Time the first datagram arrived, in nanoseconds.
    pub first_arrival_ns: u64,
}

impl SinkStats {
    /// Goodput in bits per second between the first and last arrival.
    pub fn goodput_bps(&self) -> f64 {
        let span = self.last_arrival_ns.saturating_sub(self.first_arrival_ns);
        if span == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0) / (span as f64 / 1e9)
    }
}

/// A node of the simulated network.
pub struct Node {
    /// Human-readable name (e.g. "S1", "R", "CPE").
    pub name: String,
    /// The SRv6 datapath this node runs.
    pub datapath: Seg6Datapath,
    /// CPU cost model (per core).
    pub cpu: CpuProfile,
    /// Per-receive-queue busy horizon: `rx_queue_busy_ns[q]` is the time
    /// until which queue `q`'s core is occupied by earlier packets. One
    /// entry means a single-core node (the paper's setup); more entries
    /// model an RSS-capable router whose queues are served by independent
    /// cores, as the multi-queue runtime does outside the simulator.
    pub rx_queue_busy_ns: Vec<u64>,
    /// Maximum backlog a CPU input queue may accumulate before dropping,
    /// in nanoseconds of work.
    pub cpu_queue_limit_ns: u64,
    /// Packets dropped because a CPU queue was full.
    pub cpu_drops: u64,
    /// Links attached to this node, by interface index.
    pub interfaces: HashMap<u32, usize>,
    /// Next interface index to allocate.
    pub next_ifindex: u32,
    /// UDP sink statistics, keyed by destination port.
    pub udp_sinks: HashMap<u16, SinkStats>,
    /// Total packets locally delivered (any protocol).
    pub delivered_packets: u64,
    /// How this node's packet *execution* is bound: the simulator-private
    /// CPU model, a node-private worker pool, or a tenant slot on a host
    /// pool shared with other nodes. See [`Node::enable_pool_ingestion`]
    /// and [`crate::Simulator::share_host_pool`].
    pub(crate) binding: PoolBinding,
    /// QoS parameters this node carries onto a shared host pool: its DRR
    /// weight and optional ring quota / cost budget (tenant slots are
    /// installed with these when the simulator builds the pool). The
    /// default — weight 1, no quota, no budget — reproduces the pre-QoS
    /// shared-pool behaviour. Ignored by private pools, which the node
    /// has to itself.
    pub qos: TenantQos,
}

/// Where a node's packets execute.
pub(crate) enum PoolBinding {
    /// The legacy in-simulator model: the node's own datapath runs inline.
    None,
    /// A node-private persistent worker pool (one shard per receive
    /// queue). Boxed: a pool is an order of magnitude larger than the
    /// other variants and most nodes never bind one.
    Private(Box<WorkerPool>),
    /// A tenant of a host pool owned by the simulator and shared with
    /// other nodes — the "one host, many VRFs" model. The tenant id is
    /// assigned when the simulator builds the pool.
    Shared {
        /// Index into the simulator's host-pool table.
        pool: usize,
        /// This node's tenant on that pool.
        tenant: TenantId,
    },
}

impl Node {
    /// Creates a node whose datapath answers for `addr`.
    pub fn new(name: impl Into<String>, addr: Ipv6Addr) -> Self {
        Node {
            name: name.into(),
            datapath: Seg6Datapath::new(addr),
            cpu: CpuProfile::unconstrained(),
            rx_queue_busy_ns: vec![0],
            cpu_queue_limit_ns: 5_000_000, // 5 ms of CPU backlog
            cpu_drops: 0,
            interfaces: HashMap::new(),
            next_ifindex: 1,
            udp_sinks: HashMap::new(),
            delivered_packets: 0,
            binding: PoolBinding::None,
            qos: TenantQos::default(),
        }
    }

    /// Gives the node `queues` receive queues, each served by its own core
    /// with the node's [`CpuProfile`]. Resets the busy horizons. Clamped to
    /// the slot count per-CPU maps are provisioned for by default, so
    /// queues never alias per-CPU map state.
    pub fn set_rx_queues(&mut self, queues: usize) {
        self.rx_queue_busy_ns = vec![0; queues.clamp(1, ebpf_vm::DEFAULT_NUM_CPUS as usize)];
        if matches!(self.binding, PoolBinding::Private(_)) {
            // Rebuild the pool so its shard count tracks the queue count.
            // (Shared host pools are rebuilt by the simulator at run
            // start, which re-reads every member's queue count.)
            self.enable_pool_ingestion();
        }
    }

    /// Routes this node's packet execution through the shared persistent
    /// worker pool: one long-lived shard per receive queue, each owning a
    /// [`Seg6Datapath::fork_for_cpu`] of this node's datapath (the FIB
    /// stays shared, SID/transit/LWT tables are snapshots whose programs
    /// and maps remain shared handles). Call it after setting
    /// [`Node::set_rx_queues`]; calling `set_rx_queues` afterwards
    /// rebuilds the pool, and the simulator re-forks every pooled node at
    /// the start of its first run, so datapath configuration applied any
    /// time before the first event is captured. Only reconfiguration
    /// *mid-run* requires calling this again. The simulator keeps
    /// modelling *time*
    /// (per-queue busy horizons and admission) — what moves into the pool
    /// is the packet *execution*, so simulations exercise exactly the
    /// steering + batch code path the benches measure, with identical
    /// verdicts to the in-simulator model.
    pub fn enable_pool_ingestion(&mut self) {
        self.binding = PoolBinding::Private(Box::new(WorkerPool::from_datapath(
            sim_pool_config(self.rx_queues()),
            &self.datapath,
        )));
    }

    /// Whether packet execution goes through a worker pool (private or a
    /// shared host pool).
    pub fn pool_ingestion(&self) -> bool {
        !matches!(self.binding, PoolBinding::None)
    }

    /// Marks this node as tenant `tenant` of the simulator-owned host
    /// pool `pool` (the tenant id is finalised when the pool is built).
    pub(crate) fn bind_shared_pool(&mut self, pool: usize, tenant: TenantId) {
        self.binding = PoolBinding::Shared { pool, tenant };
    }

    /// The `(host pool, tenant)` binding, when this node shares a pool.
    pub(crate) fn shared_binding(&self) -> Option<(usize, TenantId)> {
        match self.binding {
            PoolBinding::Shared { pool, tenant } => Some((pool, tenant)),
            _ => None,
        }
    }

    /// Executes one packet on the pool shard serving `queue`, returning
    /// its verdict, its work summary and the (possibly rewritten) packet
    /// bytes. `now_ns` becomes the packet's RX timestamp and processing
    /// clock, as in the in-simulator model. The frame enters through the
    /// pool's recycled-buffer burst path (`enqueue_bytes_at`: the bytes
    /// are copied into storage previous packets drained, handed over on
    /// the lock-free descriptor ring) and the output buffer is recycled
    /// back once its bytes are copied out — so a long simulation's
    /// ingestion reuses a handful of buffers instead of allocating one
    /// per packet. Only the one shard is flushed (a single cross-thread
    /// round-trip), and the result is mirrored into
    /// `self.datapath.stats`, so a pooled node's counters stay as
    /// observable as a legacy node's.
    pub(crate) fn process_via_pool(
        &mut self,
        packet: &[u8],
        now_ns: u64,
        queue: usize,
    ) -> (Verdict, PacketWork, Vec<u8>) {
        let PoolBinding::Private(pool) = &mut self.binding else { panic!("private pool ingestion enabled") };
        debug_assert_eq!(pool.steer_to(packet) as usize, queue, "pool and node steering agree");
        let (bv, bytes) = execute_on_pool(pool, TenantId::DEFAULT, packet, now_ns, queue as u32);
        // Keep the node-level statistics live: the node datapath is the
        // configuration and accounting view, the shard forks execute.
        self.datapath.stats.record(&bv.verdict, &bv.work);
        {
            let work = work_of(&bv);
            (bv.verdict, work, bytes)
        }
    }

    /// Number of receive queues (cores) this node processes packets with.
    pub fn rx_queues(&self) -> usize {
        self.rx_queue_busy_ns.len()
    }

    /// The receive queue `packet` steers to, by RSS flow hash — packets of
    /// one flow always take the same queue, preserving per-flow ordering.
    pub fn rx_queue_for(&self, packet: &[u8]) -> usize {
        if self.rx_queue_busy_ns.len() == 1 {
            return 0;
        }
        netpkt::flow::steer(netpkt::flow::rss_hash_packet(packet), self.rx_queue_busy_ns.len())
    }

    /// Registers a link on a fresh interface and returns its index.
    pub fn attach_link(&mut self, link_id: usize) -> u32 {
        let ifindex = self.next_ifindex;
        self.next_ifindex += 1;
        self.interfaces.insert(ifindex, link_id);
        ifindex
    }

    /// The link attached to `ifindex`, if any.
    pub fn link_on(&self, ifindex: u32) -> Option<usize> {
        self.interfaces.get(&ifindex).copied()
    }

    /// Records the local delivery of a packet, updating the UDP sink
    /// statistics when it carries UDP (directly or inside one level of
    /// IPv6-in-IPv6 encapsulation).
    pub fn deliver_locally(&mut self, packet: &[u8], now_ns: u64) {
        self.delivered_packets += 1;
        let Ok(parsed) = ParsedPacket::parse(packet) else { return };
        if parsed.transport_proto != proto::UDP {
            return;
        }
        let Ok(udp) = UdpHeader::parse(&packet[parsed.transport_offset..]) else { return };
        let payload_len = (udp.length as usize).saturating_sub(netpkt::UDP_HEADER_LEN);
        let entry = self
            .udp_sinks
            .entry(udp.dst_port)
            .or_insert_with(|| SinkStats { first_arrival_ns: now_ns, ..Default::default() });
        entry.packets += 1;
        entry.payload_bytes += payload_len as u64;
        entry.last_arrival_ns = now_ns;
    }

    /// UDP sink statistics for `port`.
    pub fn sink(&self, port: u16) -> SinkStats {
        self.udp_sinks.get(&port).copied().unwrap_or_default()
    }
}

/// The pool shape simnet ingestion uses: one shard per receive queue, one
/// packet per flush (the simulator hands packets one arrival event at a
/// time), outputs collected so verdicts and rewritten bytes come back.
pub(crate) fn sim_pool_config(rx_queues: usize) -> PoolConfig {
    PoolConfig {
        workers: rx_queues as u32,
        batch_size: 1,
        queue_depth: 64,
        collect_outputs: true,
        ..Default::default()
    }
}

/// Executes one packet on pool shard `shard` as `tenant`, returning its
/// [`BatchVerdict`] and the (possibly rewritten) packet bytes. `now_ns`
/// becomes the packet's RX timestamp and processing clock. The frame
/// enters through the pool's recycled-buffer path (`enqueue_bytes_at`) and
/// the output buffer is recycled back once its bytes are copied out, so a
/// long simulation's ingestion reuses a handful of buffers instead of
/// allocating one per packet. Only the one shard is flushed — a single
/// cross-thread round-trip per packet.
pub(crate) fn execute_on_pool(
    pool: &mut WorkerPool,
    tenant: TenantId,
    packet: &[u8],
    now_ns: u64,
    shard: u32,
) -> (BatchVerdict, Vec<u8>) {
    let accepted = pool.tenant(tenant).enqueue_bytes_at(now_ns, packet);
    debug_assert!(accepted, "one packet per flush never overflows the shard ring");
    let mut flush = pool.flush_shard(shard);
    let (out_tenant, skb, bv) = flush.outputs.pop().expect("the enqueued packet's output");
    debug_assert_eq!(out_tenant, tenant, "the output belongs to the enqueuing tenant");
    let bytes = skb.packet.data().to_vec();
    pool.recycle(skb.into_packet());
    (bv, bytes)
}

/// The CPU cost model's view of a [`BatchVerdict`]'s work flags.
pub(crate) fn work_of(bv: &BatchVerdict) -> PacketWork {
    PacketWork { seg6local: bv.work.seg6local, encap_or_decap: bv.work.transit, bpf: bv.work.bpf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::packet::build_ipv6_udp_packet;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn cpu_profile_costs_accumulate() {
        let cpu = CpuProfile::xeon();
        let plain = cpu.cost_ns(100, &PacketWork::default());
        let with_bpf = cpu.cost_ns(100, &PacketWork { bpf: true, ..Default::default() });
        let full = cpu.cost_ns(100, &PacketWork { bpf: true, seg6local: true, encap_or_decap: true });
        assert!(plain < with_bpf && with_bpf < full);
        // Disabling the JIT makes BPF work more expensive.
        let mut no_jit = cpu;
        no_jit.jit_enabled = false;
        assert!(no_jit.cost_ns(100, &PacketWork { bpf: true, ..Default::default() }) > with_bpf);
    }

    #[test]
    fn xeon_profile_is_near_the_papers_baseline_rate() {
        // 610 kpps ≈ 1.64 µs per packet for 64-byte-payload packets.
        let cpu = CpuProfile::xeon();
        let cost = cpu.cost_ns(150, &PacketWork::default());
        assert!((1_400..1_800).contains(&cost), "cost {cost}");
    }

    #[test]
    fn per_byte_cost_matters_on_the_cpe() {
        let cpu = CpuProfile::turris_omnia();
        let small = cpu.cost_ns(100, &PacketWork::default());
        let large = cpu.cost_ns(1400, &PacketWork::default());
        assert!(large > small + 2_000);
    }

    #[test]
    fn node_interfaces_are_allocated_sequentially() {
        let mut node = Node::new("R", addr("fc00::1"));
        assert_eq!(node.attach_link(10), 1);
        assert_eq!(node.attach_link(11), 2);
        assert_eq!(node.link_on(1), Some(10));
        assert_eq!(node.link_on(3), None);
    }

    #[test]
    fn udp_sink_accumulates_goodput() {
        let mut node = Node::new("S2", addr("fc00::2"));
        let pkt = build_ipv6_udp_packet(addr("fc00::1"), addr("fc00::2"), 1000, 5001, &[0u8; 100], 64);
        node.deliver_locally(pkt.data(), 1_000_000_000);
        node.deliver_locally(pkt.data(), 2_000_000_000);
        let sink = node.sink(5001);
        assert_eq!(sink.packets, 2);
        assert_eq!(sink.payload_bytes, 200);
        // 200 payload bytes over the 1-second span = 1600 bps.
        assert!((sink.goodput_bps() - 1600.0).abs() < 1.0);
        assert_eq!(node.sink(9999), SinkStats::default());
        assert_eq!(node.delivered_packets, 2);
    }

    #[test]
    fn non_udp_deliveries_count_but_do_not_touch_sinks() {
        let mut node = Node::new("S2", addr("fc00::2"));
        node.deliver_locally(&[0u8; 20], 0);
        assert_eq!(node.delivered_packets, 1);
        assert!(node.udp_sinks.is_empty());
    }
}
