//! The discrete-event simulator: an event queue over nodes, links and
//! applications.
//!
//! The simulator reproduces the two lab setups of Figure 1: packets
//! injected by traffic generators enter a node's datapath, pay a CPU cost
//! taken from the node's [`crate::node::CpuProfile`], are forwarded over
//! links with finite bandwidth, propagation delay, jitter and loss
//! (the `tc netem` role), and are finally delivered to UDP sinks or
//! [`crate::app::Application`]s.

use crate::app::{AppApi, Application};
use crate::link::{Link, LinkConfig};
use crate::node::{execute_on_pool, sim_pool_config, work_of, Node, PacketWork};
use netpkt::PacketBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seg6_core::{Skb, Verdict};
use seg6_runtime::WorkerPool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv6Addr;

/// One shared host pool: a persistent [`WorkerPool`] serving several
/// nodes, each as its own tenant — the "one Linux host running several
/// VRFs" model. Built (and rebuilt, capturing late datapath
/// configuration) at the start of the first run.
struct HostPool {
    /// The pool; `None` until the simulator builds it.
    pool: Option<WorkerPool>,
    /// Member node ids, in tenant order (member `i` is tenant `i`).
    members: Vec<usize>,
}

/// One scheduled event.
#[derive(Debug)]
enum Event {
    /// A packet arrives at a node from a link.
    Arrive { node: usize, ifindex: u32, packet: Vec<u8> },
    /// A locally generated packet enters a node's datapath.
    Inject { node: usize, packet: Vec<u8> },
    /// An application timer fires.
    Timer { node: usize, app: usize, timer_id: u64 },
}

#[derive(Debug)]
struct Scheduled {
    time_ns: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// Global simulation statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Packets injected by sources and applications.
    pub injected: u64,
    /// Packets delivered to a local host stack.
    pub delivered: u64,
    /// Packets dropped anywhere (CPU queues, link queues, loss, datapath).
    pub dropped: u64,
}

/// The discrete-event network simulator.
pub struct Simulator {
    nodes: Vec<Node>,
    links: Vec<Link>,
    apps: Vec<Vec<Box<dyn Application>>>,
    /// Shared host pools ([`Simulator::share_host_pool`]).
    host_pools: Vec<HostPool>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    now_ns: u64,
    seq: u64,
    rng: StdRng,
    /// Aggregate statistics.
    pub stats: SimStats,
    started: bool,
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seed (the seed drives
    /// netem jitter and loss, so runs are reproducible).
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            links: Vec::new(),
            apps: Vec::new(),
            host_pools: Vec::new(),
            queue: BinaryHeap::new(),
            now_ns: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            started: false,
        }
    }

    /// Current simulation time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: &str, addr: Ipv6Addr) -> usize {
        self.nodes.push(Node::new(name, addr));
        self.apps.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Immutable access to a node.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Mutable access to a node (to configure its datapath, CPU profile or
    /// host addresses).
    pub fn node_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a link.
    pub fn link(&self, id: usize) -> &Link {
        &self.links[id]
    }

    /// Connects two nodes with a symmetric link; returns
    /// `(link_id, ifindex_on_a, ifindex_on_b)`.
    pub fn connect(&mut self, a: usize, b: usize, config: LinkConfig) -> (usize, u32, u32) {
        self.connect_asymmetric(a, b, config, config)
    }

    /// Connects two nodes with per-direction configurations; returns
    /// `(link_id, ifindex_on_a, ifindex_on_b)`.
    pub fn connect_asymmetric(
        &mut self,
        a: usize,
        b: usize,
        config_ab: LinkConfig,
        config_ba: LinkConfig,
    ) -> (usize, u32, u32) {
        let link_id = self.links.len();
        let if_a = self.nodes[a].attach_link(link_id);
        let if_b = self.nodes[b].attach_link(link_id);
        self.links.push(Link {
            a: (a, if_a),
            b: (b, if_b),
            config_ab,
            config_ba,
            state_ab: Default::default(),
            state_ba: Default::default(),
        });
        (link_id, if_a, if_b)
    }

    /// Adds an extra fixed delay to the direction of `link_id` leaving
    /// `from_node` — the knob the delay-compensation daemon of §4.2 turns
    /// with `tc netem`.
    pub fn set_link_extra_delay(&mut self, link_id: usize, from_node: usize, extra_ns: u64) {
        self.links[link_id].state_from_mut(from_node).extra_delay_ns = extra_ns;
    }

    /// Attaches an application to a node and returns its index.
    pub fn add_app(&mut self, node: usize, app: Box<dyn Application>) -> usize {
        self.apps[node].push(app);
        self.apps[node].len() - 1
    }

    /// Schedules the injection of `packet` at `node` at absolute time
    /// `time_ns` (traffic generators use this).
    pub fn inject_at(&mut self, time_ns: u64, node: usize, packet: PacketBuf) {
        self.stats.injected += 1;
        self.schedule(time_ns, Event::Inject { node, packet: packet.data().to_vec() });
    }

    /// Schedules an application timer at absolute time `time_ns`.
    pub fn schedule_app_timer(&mut self, time_ns: u64, node: usize, app: usize, timer_id: u64) {
        self.schedule(time_ns, Event::Timer { node, app, timer_id });
    }

    fn schedule(&mut self, time_ns: u64, event: Event) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { time_ns, seq: self.seq, event }));
    }

    /// Runs until the event queue is empty or the time horizon is reached.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, horizon_ns: u64) -> u64 {
        if !self.started {
            self.started = true;
            self.refresh_pools();
            self.start_apps();
        } else {
            self.sync_host_pools();
        }
        let mut processed = 0;
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.time_ns > horizon_ns {
                break;
            }
            let Reverse(scheduled) = self.queue.pop().expect("peeked");
            self.now_ns = scheduled.time_ns;
            self.stats.events += 1;
            processed += 1;
            match scheduled.event {
                Event::Arrive { node, ifindex, packet } => self.handle_packet(node, Some(ifindex), packet),
                Event::Inject { node, packet } => self.handle_packet(node, None, packet),
                Event::Timer { node, app, timer_id } => self.handle_timer(node, app, timer_id),
            }
        }
        self.now_ns = self.now_ns.max(horizon_ns.min(self.now_ns));
        processed
    }

    /// Runs until no events remain (use with care: open-loop sources can
    /// keep the queue non-empty forever).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(u64::MAX)
    }

    /// Attaches `members` to one **shared host pool**: a single persistent
    /// [`WorkerPool`] whose shard count is the largest member's receive
    /// queue count, with every member node registered as its own tenant
    /// (member `i` = tenant `i`, each shard running
    /// `fork_for_cpu` forks of that node's datapath). This models one
    /// Linux host serving several routing contexts — VRFs — on one set of
    /// CPUs, instead of the pool-per-node shape
    /// [`Node::enable_pool_ingestion`] builds. Verdicts and timestamps
    /// are identical to pool-per-node when the members' queue counts
    /// match the pool's shard count (regression-tested).
    ///
    /// The pool is built — capturing each member's current datapath
    /// configuration — at the start of the first run (or immediately,
    /// when the simulation already started). As with private pools,
    /// reconfiguring a member's datapath *mid-run* requires calling this
    /// again by hand. Returns the host pool's id.
    pub fn share_host_pool(&mut self, members: &[usize]) -> usize {
        assert!(!members.is_empty(), "a host pool needs at least one member node");
        let id = self.host_pools.len();
        self.host_pools.push(HostPool { pool: None, members: members.to_vec() });
        for &member in members {
            // Tenant ids are finalised when the pool is built.
            self.nodes[member].bind_shared_pool(id, seg6_runtime::TenantId::DEFAULT);
        }
        if self.started {
            self.build_host_pool(id);
        }
        id
    }

    /// (Re)builds host pool `id` from its members' current datapaths:
    /// member 0 becomes the default tenant, the rest register in member
    /// order, and each node's binding records its actual tenant id. A
    /// member whose binding has since been pointed elsewhere — a private
    /// pool via [`Node::enable_pool_ingestion`], or a newer
    /// [`Simulator::share_host_pool`] call — has *left* this pool: the
    /// later explicit binding wins and the member is dropped, instead of
    /// being silently re-captured.
    fn build_host_pool(&mut self, id: usize) {
        let members: Vec<usize> = self.host_pools[id]
            .members
            .iter()
            .copied()
            .filter(|&m| self.nodes[m].shared_binding().is_some_and(|(pool, _)| pool == id))
            .collect();
        self.host_pools[id].members = members.clone();
        let Some(workers) = members.iter().map(|&m| self.nodes[m].rx_queues()).max() else {
            self.host_pools[id].pool = None;
            return;
        };
        let mut pool = WorkerPool::from_datapath(sim_pool_config(workers), &self.nodes[members[0]].datapath);
        pool.update_tenant_qos(seg6_runtime::TenantId::DEFAULT, self.nodes[members[0]].qos);
        self.nodes[members[0]].bind_shared_pool(id, seg6_runtime::TenantId::DEFAULT);
        for &member in &members[1..] {
            let spec = seg6_runtime::TenantSpec::from_datapath(&self.nodes[member].datapath)
                .qos(self.nodes[member].qos);
            let tenant = pool.add_tenant(spec);
            self.nodes[member].bind_shared_pool(id, tenant);
        }
        self.host_pools[id].pool = Some(pool);
    }

    /// The shared host pool `id` (for counter/telemetry inspection);
    /// `None` until the first run builds it.
    pub fn host_pool(&self, id: usize) -> Option<&WorkerPool> {
        self.host_pools[id].pool.as_ref()
    }

    /// Re-forks every pooled node's shards from its current datapath
    /// configuration — private pools per node, shared host pools per
    /// member — so SIDs, VRFs, transit behaviours and LWT attachments
    /// installed between pool setup and the first event are always
    /// captured. Reconfiguring a datapath *mid-run* still requires
    /// re-enabling by hand.
    fn refresh_pools(&mut self) {
        for node in &mut self.nodes {
            if node.shared_binding().is_none() && node.pool_ingestion() {
                node.enable_pool_ingestion();
            }
        }
        for id in 0..self.host_pools.len() {
            self.build_host_pool(id);
        }
    }

    /// Rebuilds any shared host pool whose shard count no longer matches
    /// its members' receive queues — the shared-pool counterpart of the
    /// immediate rebuild `set_rx_queues` performs on a private pool, so
    /// the two bindings do not diverge when queues change between runs.
    /// (A private-style *datapath* reconfiguration mid-run still requires
    /// calling [`Simulator::share_host_pool`] again, as documented there.)
    fn sync_host_pools(&mut self) {
        for id in 0..self.host_pools.len() {
            let current: Vec<usize> = self.host_pools[id]
                .members
                .iter()
                .copied()
                .filter(|&m| self.nodes[m].shared_binding().is_some_and(|(pool, _)| pool == id))
                .collect();
            if current.is_empty() {
                // Every member left (re-bound privately or to a newer
                // pool); nothing to serve.
                self.host_pools[id].members.clear();
                self.host_pools[id].pool = None;
                continue;
            }
            let workers = current.iter().map(|&m| self.nodes[m].rx_queues()).max().expect("non-empty");
            let stale = current != self.host_pools[id].members
                || self.host_pools[id].pool.as_ref().is_none_or(|pool| pool.workers() as usize != workers);
            if stale {
                self.build_host_pool(id);
            }
        }
    }

    fn start_apps(&mut self) {
        for node_id in 0..self.nodes.len() {
            let mut apps = std::mem::take(&mut self.apps[node_id]);
            for (app_idx, app) in apps.iter_mut().enumerate() {
                let mut outbox = Vec::new();
                let mut timers = Vec::new();
                {
                    let mut api =
                        AppApi { now_ns: self.now_ns, node_id, outbox: &mut outbox, timers: &mut timers };
                    app.on_start(&mut api);
                }
                self.flush_app_effects(node_id, app_idx, outbox, timers);
            }
            self.apps[node_id] = apps;
        }
    }

    fn flush_app_effects(
        &mut self,
        node_id: usize,
        app_idx: usize,
        outbox: Vec<(u64, PacketBuf)>,
        timers: Vec<(u64, u64)>,
    ) {
        for (time_ns, packet) in outbox {
            self.stats.injected += 1;
            self.schedule(time_ns, Event::Inject { node: node_id, packet: packet.data().to_vec() });
        }
        for (time_ns, timer_id) in timers {
            self.schedule(time_ns, Event::Timer { node: node_id, app: app_idx, timer_id });
        }
    }

    fn handle_timer(&mut self, node_id: usize, app_idx: usize, timer_id: u64) {
        let mut apps = std::mem::take(&mut self.apps[node_id]);
        if let Some(app) = apps.get_mut(app_idx) {
            let mut outbox = Vec::new();
            let mut timers = Vec::new();
            {
                let mut api =
                    AppApi { now_ns: self.now_ns, node_id, outbox: &mut outbox, timers: &mut timers };
                app.on_timer(&mut api, timer_id);
            }
            self.apps[node_id] = apps;
            self.flush_app_effects(node_id, app_idx, outbox, timers);
        } else {
            self.apps[node_id] = apps;
        }
    }

    fn handle_packet(&mut self, node_id: usize, _ingress: Option<u32>, packet: Vec<u8>) {
        // CPU admission: the packet's flow steers it to one receive queue
        // (RSS), each queue's core processes serially, and the packet is
        // dropped if that queue's backlog exceeds the node's limit.
        let (queue, queue_start_ns) = {
            let node = &mut self.nodes[node_id];
            let queue = node.rx_queue_for(&packet);
            let start_ns = node.rx_queue_busy_ns[queue].max(self.now_ns);
            if start_ns - self.now_ns > node.cpu_queue_limit_ns {
                node.cpu_drops += 1;
                self.stats.dropped += 1;
                return;
            }
            (queue, start_ns)
        };
        let (verdict, work, packet_after) =
            if let Some((pool_id, tenant)) = self.nodes[node_id].shared_binding() {
                // Shared host pool: the node is one tenant of a pool owned by
                // the simulator — the shard's worker executes the packet on
                // the node's forked datapath (same steering, same batch code
                // path); only the time model stays per node.
                let pool = self.host_pools[pool_id].pool.as_mut().expect("host pool built at run start");
                let shard = pool.steer_to(&packet);
                let (bv, bytes) = execute_on_pool(pool, tenant, &packet, self.now_ns, shard);
                // Keep the node-level statistics live, as private pools do.
                self.nodes[node_id].datapath.stats.record(&bv.verdict, &bv.work);
                {
                    let work = work_of(&bv);
                    (bv.verdict, work, bytes)
                }
            } else {
                let node = &mut self.nodes[node_id];
                if node.pool_ingestion() {
                    // Private pool ingestion: the queue's persistent worker
                    // shard executes the packet through the same steering +
                    // batch code path the benches measure; only the time model
                    // (busy horizons, admission) stays in the simulator.
                    node.process_via_pool(&packet, self.now_ns, queue)
                } else {
                    let before = node.datapath.stats.clone();
                    let mut skb = Skb::received(PacketBuf::from_slice(&packet), self.now_ns, 0);
                    // The datapath instance runs "on" the queue's core:
                    // programs observe the queue index as their CPU id, so
                    // per-CPU map slots and perf rings shard by queue inside
                    // the simulator too.
                    node.datapath.cpu_id = queue as u32;
                    let verdict = node.datapath.process(&mut skb, self.now_ns);
                    let after = &node.datapath.stats;
                    let work = PacketWork {
                        seg6local: after.seg6local_invocations > before.seg6local_invocations,
                        encap_or_decap: after.transit_applied > before.transit_applied,
                        bpf: after.bpf_invocations > before.bpf_invocations,
                    };
                    (verdict, work, skb.packet.data().to_vec())
                }
            };
        let start_ns = {
            let node = &mut self.nodes[node_id];
            let cost = node.cpu.cost_ns(packet.len(), &work);
            node.rx_queue_busy_ns[queue] = queue_start_ns + cost;
            queue_start_ns + cost
        };
        match verdict {
            Verdict::Forward { oif, .. } => {
                let Some(link_id) = self.nodes[node_id].link_on(oif) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.transmit(link_id, node_id, packet_after, start_ns);
            }
            Verdict::LocalDeliver => {
                self.stats.delivered += 1;
                self.nodes[node_id].deliver_locally(&packet_after, self.now_ns);
                self.deliver_to_apps(node_id, &packet_after);
            }
            Verdict::Drop(_) => {
                self.stats.dropped += 1;
            }
        }
    }

    fn deliver_to_apps(&mut self, node_id: usize, packet: &[u8]) {
        let mut apps = std::mem::take(&mut self.apps[node_id]);
        let buf = PacketBuf::from_slice(packet);
        let mut effects = Vec::new();
        for (app_idx, app) in apps.iter_mut().enumerate() {
            let mut outbox = Vec::new();
            let mut timers = Vec::new();
            {
                let mut api =
                    AppApi { now_ns: self.now_ns, node_id, outbox: &mut outbox, timers: &mut timers };
                app.on_packet(&mut api, &buf);
            }
            effects.push((app_idx, outbox, timers));
        }
        self.apps[node_id] = apps;
        for (app_idx, outbox, timers) in effects {
            self.flush_app_effects(node_id, app_idx, outbox, timers);
        }
    }

    fn transmit(&mut self, link_id: usize, from_node: usize, packet: Vec<u8>, ready_ns: u64) {
        let (peer, config, arrival_ns, dropped) = {
            let link = &mut self.links[link_id];
            let Some((peer, _)) = link.peer_of(from_node) else {
                return;
            };
            let config = *link.config_from(from_node);
            let state = link.state_from_mut(from_node);
            // Tail-drop when the transmit queue (expressed as waiting time)
            // is full.
            let start_tx = state.busy_until_ns.max(ready_ns);
            if start_tx - ready_ns > config.max_queue_wait_ns() {
                state.queue_drops += 1;
                (peer, config, 0, true)
            } else {
                let tx_done = start_tx + config.serialization_ns(packet.len());
                state.busy_until_ns = tx_done;
                state.tx_packets += 1;
                state.tx_bytes += packet.len() as u64;
                let extra = state.extra_delay_ns;
                // Random loss.
                let lost = config.loss > 0.0 && self.rng.gen_bool(config.loss);
                if lost {
                    state.loss_drops += 1;
                    (peer, config, 0, true)
                } else {
                    let jitter = if config.jitter_ns > 0 {
                        self.rng.gen_range(0..=2 * config.jitter_ns)
                    } else {
                        config.jitter_ns
                    };
                    // jitter is sampled in [0, 2j] around the nominal delay,
                    // i.e. delay - j + sample, floored at the serialisation
                    // end. The link is a FIFO pipe: a packet can never
                    // arrive before one transmitted earlier on the same
                    // direction.
                    let nominal = config.delay_ns + extra;
                    let delay = nominal.saturating_sub(config.jitter_ns) + jitter;
                    let arrival = (tx_done + delay).max(state.last_arrival_ns);
                    state.last_arrival_ns = arrival;
                    (peer, config, arrival, false)
                }
            }
        };
        let _ = config;
        if dropped {
            self.stats.dropped += 1;
            return;
        }
        self.schedule(arrival_ns, Event::Arrive { node: peer.0, ifindex: peer.1, packet });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::node::CpuProfile;
    use netpkt::packet::build_ipv6_udp_packet;
    use seg6_core::Nexthop;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    /// Builds the 3-node chain of the paper's setup 1: S1 — R — S2.
    fn three_node_chain(cpu_r: CpuProfile) -> (Simulator, usize, usize, usize) {
        let mut sim = Simulator::new(1);
        let s1 = sim.add_node("S1", addr("fc00::a1"));
        let r = sim.add_node("R", addr("fc00::11"));
        let s2 = sim.add_node("S2", addr("fc00::a2"));
        let (_, _s1_if, r_if_left) = sim.connect(s1, r, LinkConfig::lab_10g());
        let (_, r_if_right, _s2_if) = sim.connect(r, s2, LinkConfig::lab_10g());
        sim.node_mut(r).cpu = cpu_r;
        // Routing: S1 sends everything to R; R routes S2's address right.
        sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        sim.node_mut(r)
            .datapath
            .add_route("fc00::a2/128".parse().unwrap(), vec![Nexthop::direct(r_if_right)]);
        sim.node_mut(r).datapath.add_route("fc00::a1/128".parse().unwrap(), vec![Nexthop::direct(r_if_left)]);
        (sim, s1, r, s2)
    }

    #[test]
    fn packets_flow_across_the_chain() {
        let (mut sim, s1, _r, s2) = three_node_chain(CpuProfile::unconstrained());
        for i in 0..10u64 {
            let pkt = build_ipv6_udp_packet(addr("fc00::a1"), addr("fc00::a2"), 1000, 5001, &[0u8; 64], 64);
            sim.inject_at(i * 1_000, s1, pkt);
        }
        sim.run_to_completion();
        assert_eq!(sim.node(s2).sink(5001).packets, 10);
        assert_eq!(sim.stats.delivered, 10);
        assert_eq!(sim.stats.dropped, 0);
        // Arrival time includes both links' propagation delays.
        assert!(sim.node(s2).sink(5001).first_arrival_ns >= 100_000);
    }

    #[test]
    fn cpu_bottleneck_limits_throughput() {
        // R takes 10 µs per packet; sending 1000 packets back-to-back can
        // only drain at 100 kpps, and the CPU queue (5 ms) only holds 500 of
        // them.
        let slow = CpuProfile {
            forward_ns: 10_000,
            seg6local_ns: 0,
            encap_ns: 0,
            bpf_jit_ns: 0,
            bpf_interp_ns: 0,
            per_byte_ns_x1000: 0,
            jit_enabled: true,
        };
        let (mut sim, s1, r, s2) = three_node_chain(slow);
        for i in 0..1000u64 {
            let pkt = build_ipv6_udp_packet(addr("fc00::a1"), addr("fc00::a2"), 1000, 5001, &[0u8; 64], 64);
            sim.inject_at(i * 100, s1, pkt); // 10x faster than R can forward
        }
        sim.run_to_completion();
        let received = sim.node(s2).sink(5001).packets;
        assert!(received < 1000, "received {received}");
        assert!(sim.node(r).cpu_drops > 0);
        assert_eq!(received + sim.node(r).cpu_drops, 1000);
    }

    #[test]
    fn multi_queue_router_scales_with_its_queues() {
        // Same CPU-bound router as above, but packets come from many flows.
        // With Q receive queues the node forwards close to Q times more
        // before its per-queue backlogs fill.
        let slow = CpuProfile {
            forward_ns: 10_000,
            seg6local_ns: 0,
            encap_ns: 0,
            bpf_jit_ns: 0,
            bpf_interp_ns: 0,
            per_byte_ns_x1000: 0,
            jit_enabled: true,
        };
        let mut received = Vec::new();
        for queues in [1usize, 4] {
            let (mut sim, s1, r, s2) = three_node_chain(slow);
            sim.node_mut(r).set_rx_queues(queues);
            assert_eq!(sim.node(r).rx_queues(), queues);
            for i in 0..2000u64 {
                // 2000 packets over 200 distinct flows, 10x faster than one
                // core can forward.
                let pkt = build_ipv6_udp_packet(
                    addr("fc00::a1"),
                    addr("fc00::a2"),
                    1000 + (i % 200) as u16,
                    5001,
                    &[0u8; 64],
                    64,
                );
                sim.inject_at(i * 100, s1, pkt);
            }
            sim.run_to_completion();
            received.push(sim.node(s2).sink(5001).packets);
        }
        let (one, four) = (received[0], received[1]);
        assert!(four > one * 3, "1 queue: {one}, 4 queues: {four}");
    }

    /// The acceptance-criteria test: a multi-queue node whose packets go
    /// through the shared persistent worker pool produces **identical
    /// verdicts** — and therefore identical deliveries, drops, and arrival
    /// timestamps — to the legacy in-simulator multi-queue model, over a
    /// workload covering forwarding, seg6local, local delivery and
    /// unroutable drops.
    #[test]
    fn pool_ingestion_matches_the_in_simulator_model() {
        use netpkt::packet::build_srv6_udp_packet;
        use netpkt::srh::SegmentRoutingHeader;
        use seg6_core::Seg6LocalAction;

        fn build(pooled: bool) -> (Simulator, usize, usize) {
            // Non-zero cost for every work class, so a work-flag mismatch
            // between the models would shift busy horizons and timestamps.
            let (mut sim, s1, r, s2) = three_node_chain(CpuProfile::xeon());
            sim.node_mut(r).datapath.add_local_sid("fc00::e1/128".parse().unwrap(), Seg6LocalAction::End);
            sim.node_mut(r).set_rx_queues(4);
            if pooled {
                sim.node_mut(r).enable_pool_ingestion();
                assert!(sim.node(r).pool_ingestion());
            }
            for i in 0..1200u64 {
                let flow = (1000 + i % 100) as u16;
                let pkt = match i % 4 {
                    // Plain forwarding through R towards the S2 sink.
                    0..=1 => {
                        build_ipv6_udp_packet(addr("fc00::a1"), addr("fc00::a2"), flow, 5001, &[0u8; 64], 64)
                    }
                    // seg6local End at R, then on to S2.
                    2 => {
                        let srh = SegmentRoutingHeader::from_path(
                            netpkt::ipv6::proto::UDP,
                            &[addr("fc00::e1"), addr("fc00::a2")],
                        );
                        build_srv6_udp_packet(addr("fc00::a1"), &srh, flow, 5002, &[0u8; 64], 64)
                    }
                    // Local delivery at R itself.
                    _ => {
                        build_ipv6_udp_packet(addr("fc00::a1"), addr("fc00::11"), flow, 7001, &[0u8; 32], 64)
                    }
                };
                sim.inject_at(i * 300, s1, pkt);
            }
            // Unroutable packets: dropped at R in both models.
            for i in 0..50u64 {
                let pkt =
                    build_ipv6_udp_packet(addr("fc00::a1"), addr("3001::1"), 9000, 9000, &[0u8; 32], 64);
                sim.inject_at(i * 1_000, s1, pkt);
            }
            sim.run_to_completion();
            (sim, r, s2)
        }

        let (legacy, lr, ls2) = build(false);
        let (pooled, pr, ps2) = build(true);
        // Sink statistics include first/last arrival timestamps, so this
        // compares verdicts *and* the CPU cost model end to end.
        assert_eq!(legacy.node(ls2).sink(5001), pooled.node(ps2).sink(5001));
        assert_eq!(legacy.node(ls2).sink(5002), pooled.node(ps2).sink(5002));
        assert_eq!(legacy.node(lr).sink(7001), pooled.node(pr).sink(7001));
        assert_eq!(legacy.node(lr).delivered_packets, pooled.node(pr).delivered_packets);
        assert_eq!(legacy.node(lr).cpu_drops, pooled.node(pr).cpu_drops);
        assert_eq!(legacy.stats.delivered, pooled.stats.delivered);
        assert_eq!(legacy.stats.dropped, pooled.stats.dropped);
        assert!(legacy.stats.dropped >= 50, "the unroutable packets were dropped");
        assert_eq!(legacy.node(ls2).sink(5001).packets, 600);
        // Node-level datapath statistics stay observable through the pool
        // (per-shard results are mirrored back onto the node's view).
        let l = &legacy.node(lr).datapath.stats;
        let p = &pooled.node(pr).datapath.stats;
        assert_eq!(l.received, p.received);
        assert_eq!(l.forwarded, p.forwarded);
        assert_eq!(l.local_delivered, p.local_delivered);
        assert_eq!(l.seg6local_invocations, p.seg6local_invocations);
        assert_eq!(l.bpf_invocations, p.bpf_invocations);
        assert_eq!(l.transit_applied, p.transit_applied);
        assert_eq!(l.dropped, p.dropped);
        assert!(p.received > 0, "the pooled node mirrored nothing");
    }

    /// The PR-5 acceptance test: two multi-queue routers sharing **one**
    /// host pool (each as its own tenant) produce verdicts, deliveries,
    /// drops and arrival timestamps identical to the pool-per-node model
    /// — and to the legacy in-simulator model — over a workload covering
    /// forwarding, seg6local and unroutable drops on both routers.
    #[test]
    fn shared_host_pool_matches_pool_per_node() {
        use netpkt::packet::build_srv6_udp_packet;
        use netpkt::srh::SegmentRoutingHeader;
        use seg6_core::Seg6LocalAction;

        #[derive(PartialEq, Eq, Clone, Copy, Debug)]
        enum Mode {
            Legacy,
            PoolPerNode,
            SharedHostPool,
        }

        fn build(mode: Mode) -> (Simulator, usize, usize, usize) {
            // S1 — R1 — R2 — S2: two multi-queue routers, non-zero CPU
            // costs so any work-flag or verdict mismatch shifts busy
            // horizons and timestamps.
            let mut sim = Simulator::new(11);
            let s1 = sim.add_node("S1", addr("fc00::a1"));
            let r1 = sim.add_node("R1", addr("fc00::11"));
            let r2 = sim.add_node("R2", addr("fc00::12"));
            let s2 = sim.add_node("S2", addr("fc00::a2"));
            sim.connect(s1, r1, LinkConfig::lab_10g());
            let (_, r1_right, r2_left) = sim.connect(r1, r2, LinkConfig::lab_10g());
            let (_, r2_right, _) = sim.connect(r2, s2, LinkConfig::lab_10g());
            sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
            sim.node_mut(r1).cpu = CpuProfile::xeon();
            sim.node_mut(r2).cpu = CpuProfile::xeon();
            sim.node_mut(r1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(r1_right)]);
            sim.node_mut(r1).datapath.add_local_sid("fc00::e1/128".parse().unwrap(), Seg6LocalAction::End);
            sim.node_mut(r2)
                .datapath
                .add_route("fc00::a2/128".parse().unwrap(), vec![Nexthop::direct(r2_right)]);
            sim.node_mut(r2)
                .datapath
                .add_route("fc00::a1/128".parse().unwrap(), vec![Nexthop::direct(r2_left)]);
            sim.node_mut(r2).datapath.add_local_sid("fc00::e2/128".parse().unwrap(), Seg6LocalAction::End);
            sim.node_mut(r1).set_rx_queues(4);
            sim.node_mut(r2).set_rx_queues(4);
            match mode {
                Mode::Legacy => {}
                Mode::PoolPerNode => {
                    sim.node_mut(r1).enable_pool_ingestion();
                    sim.node_mut(r2).enable_pool_ingestion();
                }
                Mode::SharedHostPool => {
                    sim.share_host_pool(&[r1, r2]);
                    assert!(sim.node(r1).pool_ingestion());
                    assert!(sim.node(r2).pool_ingestion());
                }
            }
            for i in 0..1200u64 {
                let flow = (1000 + i % 100) as u16;
                let pkt = match i % 3 {
                    // Plain forwarding through both routers to the sink.
                    0 => {
                        build_ipv6_udp_packet(addr("fc00::a1"), addr("fc00::a2"), flow, 5001, &[0u8; 64], 64)
                    }
                    // seg6local End at R1 *and* R2, then on to S2.
                    1 => {
                        let srh = SegmentRoutingHeader::from_path(
                            netpkt::ipv6::proto::UDP,
                            &[addr("fc00::e1"), addr("fc00::e2"), addr("fc00::a2")],
                        );
                        build_srv6_udp_packet(addr("fc00::a1"), &srh, flow, 5002, &[0u8; 64], 64)
                    }
                    // Unroutable at R2 (no default route there): dropped.
                    _ => build_ipv6_udp_packet(addr("fc00::a1"), addr("3001::1"), flow, 9000, &[0u8; 32], 64),
                };
                sim.inject_at(i * 400, s1, pkt);
            }
            sim.run_to_completion();
            (sim, r1, r2, s2)
        }

        let (legacy, _, _, _) = build(Mode::Legacy);
        let (per_node, pn_r1, pn_r2, pn_s2) = build(Mode::PoolPerNode);
        let (shared, sh_r1, sh_r2, sh_s2) = build(Mode::SharedHostPool);

        // Sink statistics carry first/last arrival timestamps, so these
        // compare verdicts *and* the CPU cost model end to end.
        assert_eq!(per_node.node(pn_s2).sink(5001), shared.node(sh_s2).sink(5001));
        assert_eq!(per_node.node(pn_s2).sink(5002), shared.node(sh_s2).sink(5002));
        assert_eq!(legacy.node(pn_s2).sink(5001), shared.node(sh_s2).sink(5001));
        assert_eq!(legacy.node(pn_s2).sink(5002), shared.node(sh_s2).sink(5002));
        assert_eq!(per_node.stats.delivered, shared.stats.delivered);
        assert_eq!(per_node.stats.dropped, shared.stats.dropped);
        assert_eq!(legacy.stats.dropped, shared.stats.dropped);
        assert!(shared.stats.dropped >= 400, "the unroutable packets were dropped");
        assert_eq!(shared.node(sh_s2).sink(5001).packets, 400);

        // Per-node datapath statistics stay observable through the shared
        // pool, identical to the per-node pools.
        for (pn_r, sh_r) in [(pn_r1, sh_r1), (pn_r2, sh_r2)] {
            let p = &per_node.node(pn_r).datapath.stats;
            let s = &shared.node(sh_r).datapath.stats;
            assert_eq!(p.received, s.received);
            assert_eq!(p.forwarded, s.forwarded);
            assert_eq!(p.seg6local_invocations, s.seg6local_invocations);
            assert_eq!(p.dropped, s.dropped);
            assert!(s.received > 0, "the shared pool mirrored nothing");
        }

        // The host pool's live counters: one row per member node (tenant),
        // rows summing to the aggregated per-shard view, totals matching
        // the two routers' mirrored stats.
        let pool = shared.host_pool(0).expect("host pool built at run start");
        assert_eq!(pool.tenants(), 2);
        let snap = pool.counters().snapshot();
        assert_eq!(snap.tenants.len(), 2);
        let r1_stats = &shared.node(sh_r1).datapath.stats;
        let r2_stats = &shared.node(sh_r2).datapath.stats;
        assert_eq!(snap.tenants[0].totals().processed, r1_stats.received);
        assert_eq!(snap.tenants[1].totals().processed, r2_stats.received);
        assert_eq!(snap.processed(), r1_stats.received + r2_stats.received);
    }

    /// Tenancy end-to-end: two routers share a host pool, and each routes
    /// through its own **VRF** via `End.T` / `End.DT6` — the same SID and
    /// the same inner destination forward differently per tenant, proving
    /// per-tenant FIBs never cross-route inside the shared pool.
    #[test]
    fn shared_pool_tenants_route_via_their_own_vrf_tables() {
        use netpkt::srh::SegmentRoutingHeader;
        use seg6_core::Seg6LocalAction;

        let mut sim = Simulator::new(3);
        let s1 = sim.add_node("S1", addr("fc00::a1"));
        let r1 = sim.add_node("R1", addr("fc00::11"));
        let r2 = sim.add_node("R2", addr("fc00::12"));
        let s2 = sim.add_node("S2", addr("fc00::a2"));
        sim.connect(s1, r1, LinkConfig::lab_10g());
        let (_, r1_right, _) = sim.connect(r1, r2, LinkConfig::lab_10g());
        let (_, r2_right, _) = sim.connect(r2, s2, LinkConfig::lab_10g());
        sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);

        // R1: End.T via its own VRF — the *main* table routes the next
        // segment to a dead interface (would be dropped), the VRF routes
        // it onward to R2. Delivery therefore proves the VRF was used.
        {
            let dp = &mut sim.node_mut(r1).datapath;
            dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(99)]);
            let vrf = dp.add_route_in_vrf(
                "r1-tenant",
                "fc00::/16".parse().unwrap(),
                vec![Nexthop::direct(r1_right)],
            );
            dp.add_local_sid("fc00::e1/128".parse().unwrap(), Seg6LocalAction::end_t(vrf));
        }
        // R2: End.DT6 via its own VRF — decapsulates and looks the inner
        // destination up in the VRF (main has no route for it at all).
        {
            let dp = &mut sim.node_mut(r2).datapath;
            let vrf = dp.add_route_in_vrf(
                "r2-tenant",
                "fc00::a2/128".parse().unwrap(),
                vec![Nexthop::direct(r2_right)],
            );
            dp.add_local_sid("fc00::d6/128".parse().unwrap(), Seg6LocalAction::end_dt6(vrf));
        }
        sim.node_mut(r1).set_rx_queues(2);
        sim.node_mut(r2).set_rx_queues(2);
        sim.share_host_pool(&[r1, r2]);

        // IPv6-in-IPv6: outer SRH visits R1's End.T SID then R2's End.DT6
        // SID; the decapsulated inner packet is a UDP datagram to S2.
        for i in 0..32u64 {
            let inner = build_ipv6_udp_packet(
                addr("fc00::a1"),
                addr("fc00::a2"),
                (1000 + i) as u16,
                5003,
                &[0u8; 48],
                64,
            );
            let mut packet = inner.data().to_vec();
            let srh = SegmentRoutingHeader::from_path(
                netpkt::ipv6::proto::IPV6,
                &[addr("fc00::e1"), addr("fc00::d6")],
            );
            seg6_core::srv6_ops::push_srh_encap(&mut packet, &srh.to_bytes(), addr("fc00::a1")).unwrap();
            sim.inject_at(i * 2_000, s1, PacketBuf::from_slice(&packet));
        }
        sim.run_to_completion();

        // Every packet crossed both VRF lookups and was delivered,
        // decapsulated, at the sink.
        assert_eq!(sim.node(s2).sink(5003).packets, 32);
        assert_eq!(sim.stats.dropped, 0);
        assert_eq!(sim.node(r1).datapath.stats.seg6local_invocations, 32);
        assert_eq!(sim.node(r2).datapath.stats.seg6local_invocations, 32);
    }

    /// A member that explicitly re-binds after `share_host_pool` — e.g.
    /// enabling a private pool — leaves the shared pool: the later
    /// binding wins, the host pool is built without it, and both nodes
    /// keep forwarding.
    #[test]
    fn later_private_binding_wins_over_shared_membership() {
        let (mut sim, s1, r, s2) = three_node_chain(CpuProfile::unconstrained());
        let helper = sim.add_node("H", addr("fc00::99"));
        sim.connect(helper, r, LinkConfig::lab_10g());
        sim.node_mut(helper).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        sim.share_host_pool(&[r, helper]);
        // The user changes their mind before the first run: R gets its own
        // private pool. That explicit request must not be silently
        // overridden back to the shared binding at run start.
        sim.node_mut(r).enable_pool_ingestion();
        for i in 0..20u64 {
            let pkt = build_ipv6_udp_packet(addr("fc00::a1"), addr("fc00::a2"), 1000, 5001, &[0u8; 32], 64);
            sim.inject_at(i * 1_000, s1, pkt);
        }
        sim.run_to_completion();
        assert_eq!(sim.node(s2).sink(5001).packets, 20);
        assert_eq!(sim.stats.dropped, 0);
        // The host pool was built with the remaining member only.
        assert_eq!(sim.host_pool(0).expect("pool built").tenants(), 1);
        assert!(sim.node(r).pool_ingestion(), "R still executes on its private pool");
        assert!(sim.node(r).shared_binding().is_none(), "R left the shared pool");
        assert_eq!(sim.node(helper).shared_binding(), Some((0, seg6_runtime::TenantId::DEFAULT)));
    }

    /// Changing a shared-pool member's queue count *between runs* must
    /// rebuild the host pool, exactly as `set_rx_queues` rebuilds a
    /// private pool immediately — the two bindings may not diverge.
    #[test]
    fn shared_pool_tracks_queue_changes_between_runs() {
        let mut sim = Simulator::new(9);
        let s1 = sim.add_node("S1", addr("fc00::a1"));
        let r = sim.add_node("R", addr("fc00::11"));
        let s2 = sim.add_node("S2", addr("fc00::a2"));
        sim.connect(s1, r, LinkConfig::lab_10g());
        let (_, r_right, _) = sim.connect(r, s2, LinkConfig::lab_10g());
        sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        sim.node_mut(r).datapath.add_route("fc00::a2/128".parse().unwrap(), vec![Nexthop::direct(r_right)]);
        sim.node_mut(r).set_rx_queues(2);
        sim.share_host_pool(&[r]);

        let inject = |sim: &mut Simulator, base: u64, n: u64| {
            for i in 0..n {
                let pkt = build_ipv6_udp_packet(
                    addr("fc00::a1"),
                    addr("fc00::a2"),
                    1000 + (i % 64) as u16,
                    5001,
                    &[0u8; 32],
                    64,
                );
                sim.inject_at(base + i * 1_000, s1, pkt);
            }
        };
        inject(&mut sim, 0, 100);
        sim.run_until(1_000_000);
        assert_eq!(sim.host_pool(0).unwrap().workers(), 2);

        // Grow the node's queues between runs: the next run must rebuild
        // the host pool to the new shard count and keep forwarding.
        sim.node_mut(r).set_rx_queues(4);
        inject(&mut sim, 2_000_000, 100);
        sim.run_until(10_000_000);
        assert_eq!(sim.host_pool(0).unwrap().workers(), 4, "host pool tracked the queue change");
        assert_eq!(sim.node(s2).sink(5001).packets, 200);
        assert_eq!(sim.stats.dropped, 0);
    }

    /// Regression: configuration added between `enable_pool_ingestion()`
    /// and the first run must still reach the pool shards (the simulator
    /// re-forks pools at the start of its first run).
    #[test]
    fn pool_refork_captures_config_added_after_enabling() {
        use netpkt::packet::build_srv6_udp_packet;
        use netpkt::srh::SegmentRoutingHeader;
        use seg6_core::Seg6LocalAction;

        let (mut sim, s1, r, _s2) = three_node_chain(CpuProfile::unconstrained());
        sim.node_mut(r).set_rx_queues(2);
        sim.node_mut(r).enable_pool_ingestion();
        // Installed AFTER enabling the pool — the footgun case.
        sim.node_mut(r).datapath.add_local_sid("fc00::e1/128".parse().unwrap(), Seg6LocalAction::End);
        let srh =
            SegmentRoutingHeader::from_path(netpkt::ipv6::proto::UDP, &[addr("fc00::e1"), addr("fc00::a2")]);
        for i in 0..8u64 {
            let pkt = build_srv6_udp_packet(addr("fc00::a1"), &srh, 1000 + i as u16, 5002, &[0u8; 16], 64);
            sim.inject_at(i * 1_000, s1, pkt);
        }
        sim.run_to_completion();
        // The End SID executed on the pool shards (and was mirrored onto
        // the node's stats); nothing was mis-forwarded or dropped.
        assert_eq!(sim.node(r).datapath.stats.seg6local_invocations, 8);
        assert_eq!(sim.stats.delivered, 8);
        assert_eq!(sim.stats.dropped, 0);
    }

    #[test]
    fn link_bandwidth_paces_delivery() {
        // 1500-byte packets over a 12 Mbps link take 1 ms each.
        let mut sim = Simulator::new(2);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, LinkConfig::new(12_000_000, 0));
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        for _ in 0..10 {
            let pkt = build_ipv6_udp_packet(addr("fc00::1"), addr("fc00::2"), 1, 5001, &[0u8; 1452], 64);
            sim.inject_at(0, a, pkt);
        }
        sim.run_to_completion();
        let sink = sim.node(b).sink(5001);
        assert_eq!(sink.packets, 10);
        // The last packet cannot arrive before 10 serialisation times.
        assert!(sink.last_arrival_ns >= 9_900_000, "last arrival {}", sink.last_arrival_ns);
    }

    #[test]
    fn loss_drops_packets_deterministically_per_seed() {
        let mut sim = Simulator::new(42);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, LinkConfig::new(1_000_000_000, 1).with_loss(0.5));
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        for i in 0..100u64 {
            let pkt = build_ipv6_udp_packet(addr("fc00::1"), addr("fc00::2"), 1, 5001, &[0u8; 64], 64);
            sim.inject_at(i * 10_000, a, pkt);
        }
        sim.run_to_completion();
        let received = sim.node(b).sink(5001).packets;
        assert!(received > 20 && received < 80, "received {received}");
        assert_eq!(sim.stats.dropped + received, 100);
    }

    #[test]
    fn extra_delay_shifts_arrivals() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        let (link, _, _) = sim.connect(a, b, LinkConfig::new(1_000_000_000, 1));
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        sim.set_link_extra_delay(link, a, 5_000_000);
        let pkt = build_ipv6_udp_packet(addr("fc00::1"), addr("fc00::2"), 1, 5001, &[0u8; 64], 64);
        sim.inject_at(0, a, pkt);
        sim.run_to_completion();
        assert!(sim.node(b).sink(5001).first_arrival_ns >= 6_000_000);
    }

    #[test]
    fn timers_and_app_packets_flow() {
        struct Ticker {
            sent: u64,
            dst: Ipv6Addr,
            src: Ipv6Addr,
        }
        impl Application for Ticker {
            fn on_start(&mut self, api: &mut AppApi<'_>) {
                api.schedule_timer(1_000, 1);
            }
            fn on_packet(&mut self, _api: &mut AppApi<'_>, _packet: &PacketBuf) {}
            fn on_timer(&mut self, api: &mut AppApi<'_>, timer_id: u64) {
                assert_eq!(timer_id, 1);
                self.sent += 1;
                api.send(build_ipv6_udp_packet(self.src, self.dst, 1, 7000, &[0u8; 10], 64));
                if self.sent < 5 {
                    api.schedule_timer(1_000, 1);
                }
            }
        }
        let mut sim = Simulator::new(4);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, LinkConfig::gigabit());
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        sim.add_app(a, Box::new(Ticker { sent: 0, dst: addr("fc00::2"), src: addr("fc00::1") }));
        sim.run_until(1_000_000_000);
        assert_eq!(sim.node(b).sink(7000).packets, 5);
        assert!(sim.stats.events > 0);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        // A tiny queue (one packet worth) on a slow link: a burst mostly
        // drops.
        let mut sim = Simulator::new(5);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, LinkConfig::new(1_000_000, 0).with_queue_bytes(1_500));
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        for _ in 0..20 {
            let pkt = build_ipv6_udp_packet(addr("fc00::1"), addr("fc00::2"), 1, 5001, &[0u8; 1000], 64);
            sim.inject_at(0, a, pkt);
        }
        sim.run_to_completion();
        let link = sim.link(0);
        assert!(link.state_from(a).queue_drops > 0);
        assert!(sim.node(b).sink(5001).packets < 20);
    }
}
