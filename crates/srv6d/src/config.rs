//! The daemon's declarative configuration: tenants, VRFs, routes, local
//! SIDs, and queue/shard counts, parsed from a small INI-shaped text file
//! with load-time validation.
//!
//! ## Format
//!
//! ```text
//! # srv6d.conf — one [daemon] section, then one [tenant NAME] per tenant.
//! [daemon]
//! workers = 2              # worker shards = RX queues per tenant
//! batch-size = 32          # packets per processing batch
//! queue-depth = 1024       # descriptor ring slots per shard
//! rx-burst = 64            # frames pulled per socket read burst
//! stats-socket = /tmp/srv6d.sock
//! io-backend = auto        # std | mmsg | auto (raw recvmmsg/sendmmsg bursts)
//! pin = compact            # none | compact | spread | explicit core list (0,2,4)
//! pin-dispatcher = 0       # optionally pin the dispatcher thread too
//!
//! [tenant edge]
//! local = fc00::1          # the node address SIDs hang off
//! listen = [::1]:9000      # RX queue q binds port 9000+q
//! peer = 1 [::1]:9100      # egress: oif 1 emits to this address
//! vrf = customer           # declare a VRF (routes/SIDs may reference it)
//! weight = 4               # DRR scheduling weight (default 1)
//! quota = 50               # max % of each shard ring (default: unlimited)
//! budget = 500000          # cost tokens per second (default: unlimited)
//! route = 2001:db8::/32 dev 1
//! route = @customer ::/0 via fc00::ff dev 1
//! sid = fc00::1:e0 end
//! sid = fc00::1:e1 end.t customer
//! sid = fc00::1:e2 end.dt6 customer
//! ```
//!
//! `key = value` lines, `#` comments, repeatable keys (`peer`, `vrf`,
//! `route`, `sid`). Parsing is strict: unknown keys, malformed values and
//! cross-references to undeclared VRFs or peerless interfaces are
//! load-time errors carrying the offending line number — a daemon must
//! refuse a bad config at start (and at reload) rather than forward with
//! half of it applied.

use netpkt::Ipv6Prefix;
use seg6_runtime::{PinPolicy, MAX_WORKERS};
use std::fmt;
use std::net::{Ipv6Addr, SocketAddr};
use std::path::{Path, PathBuf};

/// A configuration error, with the 1-based line it was found on when the
/// problem is attributable to one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number, when the error points at a specific line.
    pub line: Option<usize>,
    /// What is wrong.
    pub message: String,
}

impl ConfigError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ConfigError { line: Some(line), message: message.into() }
    }

    fn global(message: impl Into<String>) -> Self {
        ConfigError { line: None, message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "config line {line}: {}", self.message),
            None => write!(f, "config: {}", self.message),
        }
    }
}

impl std::error::Error for ConfigError {}

/// `[daemon]` section: pool sizing and the operational endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Worker shards — and RX queues per tenant (one socket per queue).
    pub workers: u32,
    /// Packets per processing batch inside the pool.
    pub batch_size: usize,
    /// Descriptor ring slots per shard.
    pub queue_depth: usize,
    /// Frames pulled from a socket per read burst.
    pub rx_burst: usize,
    /// Unix socket path for the stats/control endpoint (optional).
    pub stats_socket: Option<PathBuf>,
    /// Socket backend: per-datagram std sockets, raw `recvmmsg`/`sendmmsg`
    /// bursts, or auto-pick (`io-backend = std|mmsg|auto`). Resolved by
    /// [`crate::io::resolve_backend`] at start; not live-reloadable.
    pub io_backend: IoBackendChoice,
    /// Shard-thread pin policy (`pin = none|compact|spread|<core list>`).
    pub pinning: PinPolicy,
    /// Pin the dispatcher thread too (`pin-dispatcher = <core>`).
    pub pin_dispatcher: Option<u32>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 1,
            batch_size: 32,
            queue_depth: 1024,
            rx_burst: 64,
            stats_socket: None,
            io_backend: IoBackendChoice::Std,
            pinning: PinPolicy::None,
            pin_dispatcher: None,
        }
    }
}

/// The `io-backend =` choice: which socket implementation the daemon
/// opens its tenant queues with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackendChoice {
    /// Standard-library UDP sockets, one syscall per datagram. The
    /// default: works everywhere, and what every deployment ran before
    /// the mmsg backend existed.
    #[default]
    Std,
    /// Raw `recvmmsg(2)`/`sendmmsg(2)`, one syscall per burst. Linux
    /// only; configuring it elsewhere is a start-time error.
    Mmsg,
    /// `mmsg` where supported, `std` elsewhere.
    Auto,
}

impl fmt::Display for IoBackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoBackendChoice::Std => "std",
            IoBackendChoice::Mmsg => "mmsg",
            IoBackendChoice::Auto => "auto",
        })
    }
}

/// One route statement inside a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    /// Target VRF (`@name` prefix in the statement); main table if absent.
    pub vrf: Option<String>,
    /// Destination prefix.
    pub prefix: Ipv6Prefix,
    /// Gateway (`via` clause); direct attachment if absent.
    pub gateway: Option<Ipv6Addr>,
    /// Egress interface index (`dev` clause).
    pub oif: u32,
}

/// The behaviour bound to a local SID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidBehaviour {
    /// `End`: advance to the next segment.
    End,
    /// `End.T`: advance, then look up in the named VRF.
    EndT(String),
    /// `End.DT6`: decapsulate, then look up in the named VRF.
    EndDt6(String),
}

/// One `sid =` statement inside a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidSpec {
    /// The SID address (installed as a /128).
    pub addr: Ipv6Addr,
    /// The endpoint behaviour bound to it.
    pub behaviour: SidBehaviour,
}

/// A tenant's QoS keys (`weight =` / `quota =` / `budget =`), applied to
/// its pool slot as a [`seg6_runtime::TenantQos`]. The quota is stored as
/// an integer percentage (1..=100) so tenant configs stay `Eq`-comparable
/// for reload diffing. The default reproduces the pre-QoS behaviour:
/// weight 1, no quota, no budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQosConfig {
    /// Deficit-round-robin scheduling weight (≥ 1).
    pub weight: u32,
    /// Maximum share of each shard's descriptor ring, in percent
    /// (1..=100); `None` = no cap.
    pub quota_percent: Option<u32>,
    /// Cost budget in tokens per second; `None` = unlimited.
    pub budget: Option<u64>,
}

impl Default for TenantQosConfig {
    fn default() -> Self {
        TenantQosConfig { weight: 1, quota_percent: None, budget: None }
    }
}

impl TenantQosConfig {
    /// The runtime QoS parameters these keys translate to.
    pub fn runtime(&self) -> seg6_runtime::TenantQos {
        seg6_runtime::TenantQos {
            weight: self.weight,
            ring_quota: self.quota_percent.map(|p| f64::from(p) / 100.0),
            cost_budget: self.budget,
        }
    }
}

/// How a tenant's new config relates to its running one, deciding the
/// reload path: nothing to do, live-tunable (routes and/or QoS patched
/// without touching the slot), or structural (retire + re-register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantDiff {
    /// Byte-identical — untouched.
    Identical,
    /// Only live-patchable settings changed: the route list (propagates
    /// through the shared tables) and/or the QoS keys (a lock-free
    /// dispatcher update). The slot, its sockets and its per-shard forks
    /// stay as they are.
    Tunable {
        /// The route list changed.
        routes_changed: bool,
        /// The `weight`/`quota`/`budget` keys changed.
        qos_changed: bool,
    },
    /// Something per-fork or socket-shaped changed (local address,
    /// listen/peers, VRFs, SIDs) — the slot must be rebuilt.
    Structural,
}

/// One `[tenant NAME]` section: a routing context with its own sockets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant name (unique across the config).
    pub name: String,
    /// The node's own address (SIDs and local delivery hang off it).
    pub local: Ipv6Addr,
    /// Base RX address: queue `q` binds `listen.port() + q`.
    pub listen: SocketAddr,
    /// Egress map: interface index → peer address frames to it are sent to.
    pub peers: Vec<(u32, SocketAddr)>,
    /// Declared VRF names, in declaration order.
    pub vrfs: Vec<String>,
    /// Route statements, in declaration order.
    pub routes: Vec<RouteSpec>,
    /// Local SID bindings, in declaration order.
    pub sids: Vec<SidSpec>,
    /// The tenant's QoS keys (weight / quota / budget).
    pub qos: TenantQosConfig,
}

impl TenantConfig {
    /// The RX socket address of queue `queue`.
    pub fn listen_addr(&self, queue: u32) -> SocketAddr {
        let mut addr = self.listen;
        addr.set_port(self.listen.port() + queue as u16);
        addr
    }

    /// The peer address of interface `oif`, when one is configured.
    pub fn peer(&self, oif: u32) -> Option<SocketAddr> {
        self.peers.iter().find(|(i, _)| *i == oif).map(|(_, a)| *a)
    }

    /// Classifies how `other` differs from `self` for reload purposes:
    /// routes and QoS keys are live-tunable (routes propagate through the
    /// shared `RouterTables`, QoS through a lock-free dispatcher update);
    /// anything else is structural and forces a slot rebuild.
    pub fn diff(&self, other: &TenantConfig) -> TenantDiff {
        let mut a = self.clone();
        let mut b = other.clone();
        a.routes.clear();
        b.routes.clear();
        a.qos = TenantQosConfig::default();
        b.qos = TenantQosConfig::default();
        if a != b {
            return TenantDiff::Structural;
        }
        let routes_changed = self.routes != other.routes;
        let qos_changed = self.qos != other.qos;
        if routes_changed || qos_changed {
            TenantDiff::Tunable { routes_changed, qos_changed }
        } else {
            TenantDiff::Identical
        }
    }

    /// Whether `other` differs from `self` **only** in its route list —
    /// the narrow pre-QoS reload predicate, kept for callers that do not
    /// care about the QoS keys. See [`TenantConfig::diff`].
    pub fn differs_only_in_routes(&self, other: &TenantConfig) -> bool {
        self.diff(other) == TenantDiff::Tunable { routes_changed: true, qos_changed: false }
    }
}

/// A full parsed and validated daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Config {
    /// `[daemon]` settings.
    pub daemon: DaemonConfig,
    /// Tenant sections, in file order.
    pub tenants: Vec<TenantConfig>,
}

impl Config {
    /// Parses and validates a configuration from its text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut parser = Parser::default();
        for (index, raw) in text.lines().enumerate() {
            parser.line(index + 1, raw)?;
        }
        parser.finish()
    }

    /// Loads and validates the configuration file at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Config, ConfigError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::global(format!("cannot read {}: {e}", path.display())))?;
        Config::parse(&text)
    }

    /// The tenant named `name`, if present.
    pub fn tenant(&self, name: &str) -> Option<&TenantConfig> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Whether `other` can be applied to a daemon running `self` without a
    /// restart: the pool-shaping `[daemon]` settings must be unchanged
    /// (worker threads, ring depths and the stats socket are built once).
    pub fn reloadable_from(&self, other: &Config) -> Result<(), ConfigError> {
        if self.daemon != other.daemon {
            return Err(ConfigError::global(
                "[daemon] settings (workers / batch-size / queue-depth / rx-burst / stats-socket / \
                 io-backend / pin / pin-dispatcher) cannot change across a live reload — restart \
                 the daemon",
            ));
        }
        Ok(())
    }
}

/// Which section the parser is inside.
enum Section {
    Daemon,
    Tenant(Box<TenantDraft>),
}

/// A `[tenant]` section under construction (validated at section end).
struct TenantDraft {
    line: usize,
    name: String,
    local: Option<Ipv6Addr>,
    listen: Option<SocketAddr>,
    peers: Vec<(u32, SocketAddr)>,
    vrfs: Vec<String>,
    routes: Vec<RouteSpec>,
    sids: Vec<SidSpec>,
    qos: TenantQosConfig,
}

#[derive(Default)]
struct Parser {
    daemon: DaemonConfig,
    seen_daemon: bool,
    tenants: Vec<TenantConfig>,
    section: Option<Section>,
}

impl Parser {
    fn line(&mut self, num: usize, raw: &str) -> Result<(), ConfigError> {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(());
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| ConfigError::at(num, "unterminated section header"))?
                .trim();
            self.close_section(num)?;
            self.section = Some(match header {
                "daemon" => {
                    if self.seen_daemon {
                        return Err(ConfigError::at(num, "duplicate [daemon] section"));
                    }
                    self.seen_daemon = true;
                    Section::Daemon
                }
                other => match other.strip_prefix("tenant") {
                    Some(name) if !name.trim().is_empty() => Section::Tenant(Box::new(TenantDraft {
                        line: num,
                        name: name.trim().to_string(),
                        local: None,
                        listen: None,
                        peers: Vec::new(),
                        vrfs: Vec::new(),
                        routes: Vec::new(),
                        sids: Vec::new(),
                        qos: TenantQosConfig::default(),
                    })),
                    Some(_) => return Err(ConfigError::at(num, "[tenant] needs a name: [tenant NAME]")),
                    None => return Err(ConfigError::at(num, format!("unknown section [{other}]"))),
                },
            });
            return Ok(());
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| ConfigError::at(num, "expected `key = value`"))?;
        if value.is_empty() {
            return Err(ConfigError::at(num, format!("`{key}` has no value")));
        }
        match &mut self.section {
            None => {
                Err(ConfigError::at(num, "settings must live inside a [daemon] or [tenant NAME] section"))
            }
            Some(Section::Daemon) => daemon_key(&mut self.daemon, num, key, value),
            Some(Section::Tenant(draft)) => tenant_key(draft, num, key, value),
        }
    }

    fn close_section(&mut self, num: usize) -> Result<(), ConfigError> {
        if let Some(Section::Tenant(draft)) = self.section.take() {
            self.tenants.push(validate_tenant(*draft, self.daemon.workers)?);
        }
        let _ = num;
        Ok(())
    }

    fn finish(mut self) -> Result<Config, ConfigError> {
        self.close_section(0)?;
        let config = Config { daemon: self.daemon, tenants: self.tenants };
        validate_config(&config)?;
        Ok(config)
    }
}

fn daemon_key(daemon: &mut DaemonConfig, num: usize, key: &str, value: &str) -> Result<(), ConfigError> {
    let parse_num = |what: &str| -> Result<usize, ConfigError> {
        value.parse::<usize>().map_err(|_| ConfigError::at(num, format!("`{what}` must be a number")))
    };
    match key {
        "workers" => {
            let workers = parse_num("workers")? as u32;
            if workers == 0 || workers > MAX_WORKERS {
                return Err(ConfigError::at(num, format!("`workers` must be 1..={MAX_WORKERS}")));
            }
            daemon.workers = workers;
        }
        "batch-size" => daemon.batch_size = parse_num("batch-size")?.max(1),
        "queue-depth" => daemon.queue_depth = parse_num("queue-depth")?.max(1),
        "rx-burst" => daemon.rx_burst = parse_num("rx-burst")?.max(1),
        "stats-socket" => daemon.stats_socket = Some(PathBuf::from(value)),
        "io-backend" | "io_backend" => {
            daemon.io_backend = match value {
                "std" => IoBackendChoice::Std,
                "mmsg" => IoBackendChoice::Mmsg,
                "auto" => IoBackendChoice::Auto,
                other => {
                    return Err(ConfigError::at(
                        num,
                        format!("`io-backend` must be std, mmsg or auto (got `{other}`)"),
                    ))
                }
            }
        }
        "pin" => {
            daemon.pinning =
                value.parse::<PinPolicy>().map_err(|e| ConfigError::at(num, format!("`pin`: {e}")))?
        }
        "pin-dispatcher" | "pin_dispatcher" => {
            daemon.pin_dispatcher = Some(
                value
                    .parse::<u32>()
                    .map_err(|_| ConfigError::at(num, "`pin-dispatcher` must be a core number"))?,
            )
        }
        other => return Err(ConfigError::at(num, format!("unknown [daemon] key `{other}`"))),
    }
    Ok(())
}

fn tenant_key(draft: &mut TenantDraft, num: usize, key: &str, value: &str) -> Result<(), ConfigError> {
    match key {
        "local" => {
            draft.local = Some(
                value
                    .parse::<Ipv6Addr>()
                    .map_err(|_| ConfigError::at(num, "`local` must be an IPv6 address"))?,
            )
        }
        "listen" => {
            draft.listen = Some(parse_sockaddr(value).ok_or_else(|| {
                ConfigError::at(num, "`listen` must be an IPv6 socket address like [::1]:9000")
            })?)
        }
        "peer" => {
            let (oif, addr) = value
                .split_once(char::is_whitespace)
                .ok_or_else(|| ConfigError::at(num, "`peer` is `peer = <oif> <addr>:<port>`"))?;
            let oif = oif
                .trim()
                .parse::<u32>()
                .map_err(|_| ConfigError::at(num, "`peer` interface index must be a number"))?;
            let addr = parse_sockaddr(addr.trim())
                .ok_or_else(|| ConfigError::at(num, "`peer` address must be like [::1]:9100"))?;
            if draft.peers.iter().any(|(i, _)| *i == oif) {
                return Err(ConfigError::at(num, format!("duplicate peer for interface {oif}")));
            }
            draft.peers.push((oif, addr));
        }
        "vrf" => {
            if draft.vrfs.iter().any(|v| v == value) {
                return Err(ConfigError::at(num, format!("duplicate vrf `{value}`")));
            }
            draft.vrfs.push(value.to_string());
        }
        "route" => draft.routes.push(parse_route(draft, num, value)?),
        "sid" => draft.sids.push(parse_sid(draft, num, value)?),
        "weight" => {
            let weight =
                value.parse::<u32>().map_err(|_| ConfigError::at(num, "`weight` must be a number"))?;
            if weight == 0 {
                return Err(ConfigError::at(num, "`weight` must be at least 1"));
            }
            draft.qos.weight = weight;
        }
        "quota" => {
            // `quota = 50` or `quota = 50%`: a share of each shard ring.
            let percent = value
                .trim_end_matches('%')
                .trim()
                .parse::<u32>()
                .map_err(|_| ConfigError::at(num, "`quota` must be a percentage like 50 or 50%"))?;
            if percent == 0 || percent > 100 {
                return Err(ConfigError::at(num, "`quota` must be 1..=100 percent"));
            }
            draft.qos.quota_percent = Some(percent);
        }
        "budget" => {
            let budget = value
                .parse::<u64>()
                .map_err(|_| ConfigError::at(num, "`budget` must be a number of cost tokens/sec"))?;
            if budget == 0 {
                return Err(ConfigError::at(num, "`budget` must be at least 1 token/sec"));
            }
            draft.qos.budget = Some(budget);
        }
        other => return Err(ConfigError::at(num, format!("unknown [tenant] key `{other}`"))),
    }
    Ok(())
}

/// `route = [@vrf] <prefix> [via <gw>] dev <oif>`
fn parse_route(draft: &TenantDraft, num: usize, value: &str) -> Result<RouteSpec, ConfigError> {
    let mut words = value.split_whitespace().peekable();
    let vrf = match words.peek() {
        Some(word) if word.starts_with('@') => {
            let name = words.next().unwrap()[1..].to_string();
            if !draft.vrfs.contains(&name) {
                return Err(ConfigError::at(num, format!("route references undeclared vrf `{name}`")));
            }
            Some(name)
        }
        _ => None,
    };
    let prefix = words
        .next()
        .and_then(|p| p.parse::<Ipv6Prefix>().ok())
        .ok_or_else(|| ConfigError::at(num, "route needs a destination prefix like 2001:db8::/32"))?;
    let mut gateway = None;
    let mut oif = None;
    while let Some(word) = words.next() {
        match word {
            "via" => {
                let gw = words
                    .next()
                    .and_then(|g| g.parse::<Ipv6Addr>().ok())
                    .ok_or_else(|| ConfigError::at(num, "`via` needs an IPv6 gateway address"))?;
                gateway = Some(gw);
            }
            "dev" => {
                let dev = words
                    .next()
                    .and_then(|d| d.parse::<u32>().ok())
                    .ok_or_else(|| ConfigError::at(num, "`dev` needs an interface index"))?;
                oif = Some(dev);
            }
            other => return Err(ConfigError::at(num, format!("unknown route clause `{other}`"))),
        }
    }
    let oif = oif.ok_or_else(|| ConfigError::at(num, "route needs a `dev <oif>` clause"))?;
    Ok(RouteSpec { vrf, prefix, gateway, oif })
}

/// `sid = <addr> end | end.t <vrf> | end.dt6 <vrf>`
fn parse_sid(draft: &TenantDraft, num: usize, value: &str) -> Result<SidSpec, ConfigError> {
    let mut words = value.split_whitespace();
    let addr = words
        .next()
        .and_then(|a| a.parse::<Ipv6Addr>().ok())
        .ok_or_else(|| ConfigError::at(num, "sid needs an IPv6 address"))?;
    let behaviour = words.next().unwrap_or("").to_ascii_lowercase();
    let needs_vrf = |words: &mut std::str::SplitWhitespace<'_>| -> Result<String, ConfigError> {
        let name = words
            .next()
            .ok_or_else(|| ConfigError::at(num, format!("`{behaviour}` needs a vrf name")))?
            .to_string();
        if !draft.vrfs.contains(&name) {
            return Err(ConfigError::at(num, format!("sid references undeclared vrf `{name}`")));
        }
        Ok(name)
    };
    let behaviour = match behaviour.as_str() {
        "end" => SidBehaviour::End,
        "end.t" => SidBehaviour::EndT(needs_vrf(&mut words)?),
        "end.dt6" => SidBehaviour::EndDt6(needs_vrf(&mut words)?),
        "" => return Err(ConfigError::at(num, "sid needs a behaviour: end | end.t <vrf> | end.dt6 <vrf>")),
        other => return Err(ConfigError::at(num, format!("unknown sid behaviour `{other}`"))),
    };
    if let Some(extra) = words.next() {
        return Err(ConfigError::at(num, format!("unexpected `{extra}` after sid behaviour")));
    }
    Ok(SidSpec { addr, behaviour })
}

fn parse_sockaddr(s: &str) -> Option<SocketAddr> {
    let addr: SocketAddr = s.parse().ok()?;
    addr.is_ipv6().then_some(addr)
}

fn validate_tenant(draft: TenantDraft, workers: u32) -> Result<TenantConfig, ConfigError> {
    let line = draft.line;
    let local = draft
        .local
        .ok_or_else(|| ConfigError::at(line, format!("tenant `{}` needs `local = <addr>`", draft.name)))?;
    let listen = draft.listen.ok_or_else(|| {
        ConfigError::at(line, format!("tenant `{}` needs `listen = [addr]:port`", draft.name))
    })?;
    // Queue q binds port+q: the whole range must stay a valid port.
    if u32::from(listen.port()) + workers > u32::from(u16::MAX) {
        return Err(ConfigError::at(
            line,
            format!("tenant `{}` listen port range overflows a u16 with {workers} queues", draft.name),
        ));
    }
    for route in &draft.routes {
        if draft.peers.iter().all(|(oif, _)| *oif != route.oif) {
            return Err(ConfigError::at(
                line,
                format!(
                    "tenant `{}` routes out of interface {} but declares no `peer = {} <addr>`",
                    draft.name, route.oif, route.oif
                ),
            ));
        }
    }
    Ok(TenantConfig {
        name: draft.name,
        local,
        listen,
        peers: draft.peers,
        vrfs: draft.vrfs,
        routes: draft.routes,
        sids: draft.sids,
        qos: draft.qos,
    })
}

fn validate_config(config: &Config) -> Result<(), ConfigError> {
    if config.tenants.is_empty() {
        return Err(ConfigError::global("at least one [tenant NAME] section is required"));
    }
    for (i, tenant) in config.tenants.iter().enumerate() {
        for other in &config.tenants[i + 1..] {
            if tenant.name == other.name {
                return Err(ConfigError::global(format!("duplicate tenant `{}`", tenant.name)));
            }
            // Each tenant owns the port window [port, port+workers); two
            // tenants on the same IP must not overlap.
            let same_ip = tenant.listen.ip() == other.listen.ip();
            let (a, b) = (u32::from(tenant.listen.port()), u32::from(other.listen.port()));
            let overlap = a < b + config.daemon.workers && b < a + config.daemon.workers;
            if same_ip && overlap {
                return Err(ConfigError::global(format!(
                    "tenants `{}` and `{}` have overlapping listen port ranges ({} queues each)",
                    tenant.name, other.name, config.daemon.workers
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# a two-tenant edge daemon
[daemon]
workers = 2
batch-size = 16
queue-depth = 256
rx-burst = 32
stats-socket = /tmp/srv6d-test.sock

[tenant edge]
local = fc00::1
listen = [::1]:9000
peer = 1 [::1]:9100
vrf = customer
weight = 4
quota = 50%
budget = 500000
route = 2001:db8::/32 dev 1
route = @customer ::/0 via fc00::ff dev 1
sid = fc00::1:e1 end.t customer
sid = fc00::1:e2 end.dt6 customer
sid = fc00::1:e0 end

[tenant lab]
local = fc00::2
listen = [::1]:9010
peer = 7 [::1]:9110
route = ::/0 dev 7
"#;

    #[test]
    fn parses_a_full_config() {
        let config = Config::parse(GOOD).expect("valid config");
        assert_eq!(config.daemon.workers, 2);
        assert_eq!(config.daemon.batch_size, 16);
        assert_eq!(config.daemon.stats_socket.as_deref(), Some(Path::new("/tmp/srv6d-test.sock")));
        assert_eq!(config.tenants.len(), 2);

        let edge = config.tenant("edge").unwrap();
        assert_eq!(edge.local, "fc00::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(edge.listen_addr(0).port(), 9000);
        assert_eq!(edge.listen_addr(1).port(), 9001);
        assert_eq!(edge.peer(1), Some("[::1]:9100".parse().unwrap()));
        assert_eq!(edge.vrfs, vec!["customer".to_string()]);
        assert_eq!(edge.routes.len(), 2);
        assert_eq!(edge.routes[1].vrf.as_deref(), Some("customer"));
        assert_eq!(edge.routes[1].gateway, Some("fc00::ff".parse().unwrap()));
        assert_eq!(edge.sids.len(), 3);
        assert_eq!(edge.sids[0].behaviour, SidBehaviour::EndT("customer".into()));
        assert_eq!(edge.sids[2].behaviour, SidBehaviour::End);

        let lab = config.tenant("lab").unwrap();
        assert_eq!(lab.routes[0].oif, 7);

        // QoS keys: explicit on `edge`, defaults on `lab`.
        assert_eq!(edge.qos, TenantQosConfig { weight: 4, quota_percent: Some(50), budget: Some(500_000) });
        assert_eq!(lab.qos, TenantQosConfig::default());
        let qos = edge.qos.runtime();
        assert_eq!(qos.weight, 4);
        assert_eq!(qos.ring_quota, Some(0.5));
        assert_eq!(qos.cost_budget, Some(500_000));
    }

    fn err_line(text: &str) -> Option<usize> {
        Config::parse(text).expect_err("must be rejected").line
    }

    #[test]
    fn rejects_malformed_configs_with_line_numbers() {
        // Unknown key, bad value, missing section, bad reference — each
        // error names the offending line.
        assert_eq!(err_line("[daemon]\nbogus = 1"), Some(2));
        assert_eq!(err_line("[daemon]\nworkers = many"), Some(2));
        assert_eq!(err_line("workers = 1"), Some(1));
        assert_eq!(err_line("[daemon]\nworkers = 0"), Some(2));
        assert_eq!(
            err_line("[tenant a]\nlocal = fc00::1\nlisten = [::1]:9000\nroute = ::/0 dev 1"),
            Some(1),
            "route without a matching peer points at the tenant header"
        );
        assert_eq!(
            err_line("[tenant a]\nlocal = fc00::1\nlisten = [::1]:9000\nsid = fc00::1 end.t nope"),
            Some(4)
        );
        assert_eq!(
            err_line("[tenant a]\nlocal = fc00::1\nlisten = [::1]:9000\nroute = @nope ::/0 dev 1"),
            Some(4)
        );
        // IPv4 listen addresses are refused: this is an SRv6 daemon.
        assert_eq!(err_line("[tenant a]\nlocal = fc00::1\nlisten = 127.0.0.1:9000"), Some(3));
        // Global validation errors carry no line.
        assert_eq!(err_line("[daemon]\nworkers = 1"), None, "no tenants");
        let dup = "[tenant a]\nlocal = ::1\nlisten = [::1]:1\n[tenant a]\nlocal = ::1\nlisten = [::1]:5";
        assert_eq!(err_line(dup), None);
    }

    #[test]
    fn rejects_overlapping_listen_ranges() {
        let text = "[daemon]\nworkers = 4\n\
                    [tenant a]\nlocal = ::1\nlisten = [::1]:9000\n\
                    [tenant b]\nlocal = ::1\nlisten = [::1]:9003";
        assert!(Config::parse(text).expect_err("overlap").message.contains("overlapping"));
        let ok = "[daemon]\nworkers = 4\n\
                  [tenant a]\nlocal = ::1\nlisten = [::1]:9000\n\
                  [tenant b]\nlocal = ::1\nlisten = [::1]:9004";
        assert!(Config::parse(ok).is_ok());
    }

    #[test]
    fn rejects_bad_qos_values_with_line_numbers() {
        let tenant = "[tenant a]\nlocal = fc00::1\nlisten = [::1]:9000\n";
        assert_eq!(err_line(&format!("{tenant}weight = 0")), Some(4));
        assert_eq!(err_line(&format!("{tenant}weight = heavy")), Some(4));
        assert_eq!(err_line(&format!("{tenant}quota = 0")), Some(4));
        assert_eq!(err_line(&format!("{tenant}quota = 101")), Some(4));
        assert_eq!(err_line(&format!("{tenant}quota = half")), Some(4));
        assert_eq!(err_line(&format!("{tenant}budget = 0")), Some(4));
    }

    #[test]
    fn diff_classifies_reload_paths() {
        let base = Config::parse(GOOD).unwrap();
        let edge = &base.tenants[0];
        assert_eq!(edge.diff(edge), TenantDiff::Identical);

        let mut weight_only = edge.clone();
        weight_only.qos.weight = 9;
        assert_eq!(
            edge.diff(&weight_only),
            TenantDiff::Tunable { routes_changed: false, qos_changed: true },
            "a weight-only change must take the live-tune fast path"
        );
        assert!(!edge.differs_only_in_routes(&weight_only));

        let mut both = edge.clone();
        both.qos.budget = None;
        both.routes.pop();
        assert_eq!(edge.diff(&both), TenantDiff::Tunable { routes_changed: true, qos_changed: true });

        let mut structural = edge.clone();
        structural.listen.set_port(12_000);
        assert_eq!(edge.diff(&structural), TenantDiff::Structural);
        let mut structural_plus_qos = structural.clone();
        structural_plus_qos.qos.weight = 2;
        assert_eq!(edge.diff(&structural_plus_qos), TenantDiff::Structural);
    }

    #[test]
    fn route_only_diffs_are_detected() {
        let base = Config::parse(GOOD).unwrap();
        let mut routed = base.clone();
        routed.tenants[0].routes.pop();
        assert!(base.tenants[0].differs_only_in_routes(&routed.tenants[0]));
        let mut moved = base.clone();
        moved.tenants[0].listen.set_port(12_000);
        assert!(!base.tenants[0].differs_only_in_routes(&moved.tenants[0]));
        assert!(!base.tenants[0].differs_only_in_routes(&base.tenants[0]), "identical is not a diff");
    }

    #[test]
    fn reload_guard_rejects_daemon_shape_changes() {
        let base = Config::parse(GOOD).unwrap();
        assert!(base.reloadable_from(&base).is_ok());
        let mut reshaped = base.clone();
        reshaped.daemon.workers = 1;
        assert!(base.reloadable_from(&reshaped).is_err());
    }

    #[test]
    fn io_backend_and_pinning_keys_parse() {
        let text = GOOD.replace(
            "stats-socket = /tmp/srv6d-test.sock",
            "stats-socket = /tmp/srv6d-test.sock\nio-backend = auto\npin = 0,2\npin-dispatcher = 1",
        );
        let cfg = Config::parse(&text).unwrap();
        assert_eq!(cfg.daemon.io_backend, IoBackendChoice::Auto);
        assert_eq!(cfg.daemon.pinning, PinPolicy::Explicit(vec![0, 2]));
        assert_eq!(cfg.daemon.pin_dispatcher, Some(1));

        // Underscore spellings are accepted, and the defaults hold when the
        // keys are absent.
        let text = GOOD.replace("rx-burst = 32", "rx-burst = 32\nio_backend = mmsg");
        assert_eq!(Config::parse(&text).unwrap().daemon.io_backend, IoBackendChoice::Mmsg);
        let cfg = Config::parse(GOOD).unwrap();
        assert_eq!(cfg.daemon.io_backend, IoBackendChoice::Std);
        assert_eq!(cfg.daemon.pinning, PinPolicy::None);
        assert_eq!(cfg.daemon.pin_dispatcher, None);
    }

    #[test]
    fn io_backend_and_pinning_keys_reject_bad_values() {
        for (bad, needle) in [
            ("io-backend = dpdk", "`io-backend` must be"),
            ("pin = diagonal", "`pin`:"),
            ("pin-dispatcher = many", "`pin-dispatcher` must be a core number"),
        ] {
            let text = GOOD.replace("rx-burst = 32", &format!("rx-burst = 32\n{bad}"));
            let err = Config::parse(&text).unwrap_err().to_string();
            assert!(err.contains(needle), "{bad}: {err}");
            assert!(err.contains("line 8"), "{bad} should blame its line: {err}");
        }
    }

    #[test]
    fn reload_guard_rejects_backend_and_pinning_changes() {
        let base = Config::parse(GOOD).unwrap();
        let mut flipped = base.clone();
        flipped.daemon.io_backend = IoBackendChoice::Mmsg;
        let err = base.reloadable_from(&flipped).unwrap_err().to_string();
        assert!(err.contains("io-backend"), "{err}");

        let mut pinned = base.clone();
        pinned.daemon.pinning = PinPolicy::Compact;
        assert!(base.reloadable_from(&pinned).is_err());
    }
}
