//! The daemon proper: config → datapaths → worker pool → socket loop.
//!
//! [`Srv6Daemon::start`] builds one [`Seg6Datapath`] template per tenant
//! from the config, registers each as a pool tenant (the pool forks the
//! template per worker shard, sharing the `RouterTables` `Arc` so route
//! edits propagate lock-free), and opens one RX socket per (tenant,
//! queue) plus one TX socket per (tenant, egress interface) through the
//! [`IoBackend`] seam. [`Srv6Daemon::service`] is one poll-loop pass:
//! burst-read every RX socket into the reused [`FrameBatch`], feed the
//! frames to `enqueue_bytes_all` (one copy into recycled `BufPool`
//! storage — the zero-allocation ingest path), then run a flush barrier
//! and emit every `Forward` verdict out of its interface's TX socket,
//! recycling each output buffer back into the arena.
//!
//! [`Srv6Daemon::reload`] applies a validated new config as a diff:
//! route-only changes go straight into the live tables; added tenants are
//! registered on the running pool; removed or structurally changed
//! tenants are *retired* (sockets closed, slot deactivated — the pool
//! keeps their counters; it has no tenant deregistration, by design).
//! [`Srv6Daemon::drain`] is the graceful exit: intake stops, a final
//! flush barrier runs, the last window's forwarded packets are emitted,
//! and the terminal per-tenant counters are reported.

use crate::config::{Config, ConfigError, RouteSpec, SidBehaviour, TenantConfig, TenantDiff};
use crate::io::IoBackend;
use crate::stats::{DaemonShared, StatsServer, TenantIo, TenantMeta};
use netpkt::sockio::{FrameBatch, PacketRx, PacketTx};
use netpkt::Ipv6Prefix;
use seg6_core::{BatchVerdict, Nexthop, Seg6Datapath, Seg6LocalAction, Verdict, MAIN_TABLE};
use seg6_runtime::{DrainReport, Ingress, PoolConfig, ShardSnapshot, TenantId, TenantSpec, WorkerPool};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A daemon start/reload failure.
#[derive(Debug)]
pub enum DaemonError {
    /// The configuration was rejected.
    Config(ConfigError),
    /// A socket could not be opened.
    Io(std::io::Error),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Config(e) => write!(f, "{e}"),
            DaemonError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<ConfigError> for DaemonError {
    fn from(e: ConfigError) -> Self {
        DaemonError::Config(e)
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

/// What one [`Srv6Daemon::service`] pass moved.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServicePass {
    /// Frames read off RX sockets this pass.
    pub rx_frames: usize,
    /// Frames emitted out of TX sockets this pass.
    pub tx_frames: usize,
    /// Forwarded packets not emitted (backpressure or no peer).
    pub tx_drops: usize,
}

/// What a [`Srv6Daemon::reload`] changed, by tenant name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReloadReport {
    /// Tenants newly registered on the running pool.
    pub added: Vec<String>,
    /// Tenants retired because the new config no longer lists them.
    pub removed: Vec<String>,
    /// Tenants retired and re-registered because a non-route setting
    /// changed (SIDs, VRFs, sockets — per-fork state the pool cannot
    /// patch in place).
    pub rebuilt: Vec<String>,
    /// Tenants whose route set was patched live through the shared
    /// tables, without touching their sockets or pool slot.
    pub routes_changed: Vec<String>,
    /// Tenants whose QoS keys (weight/quota/budget) were retuned live
    /// through the dispatcher, without touching their sockets or pool
    /// slot. A tenant changing both routes and QoS appears in both lists.
    pub retuned: Vec<String>,
    /// Tenants whose config is byte-identical — untouched.
    pub unchanged: usize,
}

impl fmt::Display for ReloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reload: {} added, {} removed, {} rebuilt, {} route-patched, {} retuned, {} unchanged",
            self.added.len(),
            self.removed.len(),
            self.rebuilt.len(),
            self.routes_changed.len(),
            self.retuned.len(),
            self.unchanged
        )
    }
}

/// One tenant slot's terminal accounting, from [`Srv6Daemon::drain`].
#[derive(Debug, Clone)]
pub struct TenantFinal {
    /// Tenant name.
    pub name: String,
    /// Whether the slot was still serving when the drain started.
    pub active: bool,
    /// The slot's pool counters summed over shards, at quiescence.
    pub totals: ShardSnapshot,
    /// Frames read off the slot's RX sockets, lifetime.
    pub rx_frames: u64,
    /// Frames emitted out of the slot's TX sockets, lifetime.
    pub tx_frames: u64,
    /// Forwarded packets never emitted, lifetime.
    pub tx_drops: u64,
}

/// Result of a graceful [`Srv6Daemon::drain`].
pub struct DaemonDrainReport {
    /// Per-tenant-slot terminal accounting, in slot order.
    pub tenants: Vec<TenantFinal>,
    /// The pool's drain report (final flush stats, quiesced counter
    /// snapshot, per-shard lifetime totals).
    pub drain: DrainReport,
}

/// One tenant slot: its config, its datapath template (kept alive for
/// live route edits — the pool's per-shard forks share its
/// `RouterTables` `Arc`), its sockets and its pool identity.
struct TenantRuntime {
    cfg: TenantConfig,
    id: TenantId,
    template: Seg6Datapath,
    rx: Vec<Box<dyn PacketRx>>,
    tx: Vec<(u32, Box<dyn PacketTx>)>,
    io: Arc<TenantIo>,
    active: bool,
}

/// Builds a tenant's datapath template from its config section.
fn build_datapath(cfg: &TenantConfig) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(cfg.local);
    for vrf in &cfg.vrfs {
        dp.register_vrf(vrf);
    }
    for route in &cfg.routes {
        apply_route(&mut dp, route);
    }
    for sid in &cfg.sids {
        let action = match &sid.behaviour {
            SidBehaviour::End => Seg6LocalAction::End,
            SidBehaviour::EndT(vrf) => Seg6LocalAction::end_t(dp.register_vrf(vrf)),
            SidBehaviour::EndDt6(vrf) => Seg6LocalAction::end_dt6(dp.register_vrf(vrf)),
        };
        dp.add_local_sid(Ipv6Prefix::host(sid.addr), action);
    }
    dp
}

fn nexthop_of(route: &RouteSpec) -> Nexthop {
    match route.gateway {
        Some(gateway) => Nexthop::via(gateway, route.oif),
        None => Nexthop::direct(route.oif),
    }
}

fn apply_route(dp: &mut Seg6Datapath, route: &RouteSpec) {
    let nexthops = vec![nexthop_of(route)];
    match &route.vrf {
        Some(vrf) => {
            dp.add_route_in_vrf(vrf, route.prefix, nexthops);
        }
        None => dp.add_route(route.prefix, nexthops),
    }
}

fn remove_route(dp: &Seg6Datapath, route: &RouteSpec) -> bool {
    let table = match &route.vrf {
        // The VRF is declared in the config, so it is registered; an
        // unknown name here would be a validation bug, not a user error.
        Some(vrf) => match dp.tables.vrf(vrf) {
            Some(table) => table,
            None => return false,
        },
        None => MAIN_TABLE,
    };
    dp.tables.remove(table, &route.prefix)
}

/// The running daemon: pool, tenant slots, sockets, stats endpoint.
pub struct Srv6Daemon {
    cfg: Config,
    pool: WorkerPool,
    tenants: Vec<TenantRuntime>,
    backend: Box<dyn IoBackend>,
    shared: Arc<DaemonShared>,
    batch: FrameBatch,
    epoch: Instant,
    stats: Option<StatsServer>,
}

impl Srv6Daemon {
    /// Brings the daemon up on a validated config: builds the pool (first
    /// tenant is the pool's default tenant, the rest are registered over
    /// the control channel), opens every socket through `backend`, and
    /// starts the stats server when the config names a socket path.
    pub fn start(cfg: Config, mut backend: Box<dyn IoBackend>) -> Result<Srv6Daemon, DaemonError> {
        let first =
            cfg.tenants.first().ok_or_else(|| ConfigError { line: None, message: "no tenants".into() })?;
        let pool_config = PoolConfig {
            workers: cfg.daemon.workers,
            batch_size: cfg.daemon.batch_size,
            queue_depth: cfg.daemon.queue_depth,
            collect_outputs: true,
            pinning: cfg.daemon.pinning.clone(),
            pin_dispatcher: cfg.daemon.pin_dispatcher,
            ..Default::default()
        };
        let template = build_datapath(first);
        let mut pool = WorkerPool::from_datapath(pool_config, &template);
        pool.update_tenant_qos(TenantId::DEFAULT, first.qos.runtime());

        let mut tenants = Vec::with_capacity(cfg.tenants.len());
        tenants.push(open_tenant(&mut *backend, &cfg, first.clone(), TenantId::DEFAULT, template)?);
        for tenant_cfg in &cfg.tenants[1..] {
            let template = build_datapath(tenant_cfg);
            let id = pool.add_tenant(TenantSpec::from_datapath(&template).qos(tenant_cfg.qos.runtime()));
            tenants.push(open_tenant(&mut *backend, &cfg, tenant_cfg.clone(), id, template)?);
        }

        let shared = DaemonShared::new(pool.counters());
        let stats = match &cfg.daemon.stats_socket {
            Some(path) => Some(StatsServer::spawn(path, Arc::clone(&shared))?),
            None => None,
        };
        let batch = FrameBatch::with_capacity(cfg.daemon.rx_burst);
        let daemon = Srv6Daemon { cfg, pool, tenants, backend, shared, batch, epoch: Instant::now(), stats };
        daemon.sync_shared();
        Ok(daemon)
    }

    /// The state shared with signal handlers and the stats server —
    /// wire `shared().flags` to SIGHUP/SIGTERM to drive reload and drain.
    pub fn shared(&self) -> Arc<DaemonShared> {
        Arc::clone(&self.shared)
    }

    /// The daemon's current (last successfully applied) config.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Read access to the worker pool (counters, buffer-arena telemetry —
    /// the mint-flat assertions of the zero-allocation tests).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Monotonic nanoseconds since daemon start — the RX timestamp clock.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// One poll-loop pass: burst-read every active tenant's RX queues
    /// into the pool, and — when anything arrived — run a flush barrier
    /// and emit the forwarded outputs. Returns what moved, so the caller
    /// can sleep when the daemon is idle.
    pub fn service(&mut self) -> ServicePass {
        let mut pass = ServicePass::default();
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        for tenant in &mut self.tenants {
            if !tenant.active {
                continue;
            }
            for rx in &mut tenant.rx {
                self.batch.clear();
                let got = match rx.fill(&mut self.batch) {
                    Ok(got) => got,
                    Err(_) => continue,
                };
                if got == 0 {
                    continue;
                }
                // One copy: socket bytes → recycled BufPool storage →
                // descriptor ring. Rejected frames (full ring, quota or
                // budget sheds) are counted by the pool's per-tenant
                // counters.
                ingest_burst(&mut self.pool.tenant(tenant.id), now_ns, self.batch.frames());
                tenant.io.rx_frames.fetch_add(got as u64, Ordering::Relaxed);
                pass.rx_frames += got;
            }
        }
        if pass.rx_frames > 0 {
            let report = self.pool.flush();
            let pool = &mut self.pool;
            let (sent, drops) =
                emit_outputs(&mut self.tenants, report.outputs, |packet| pool.recycle(packet));
            pass.tx_frames += sent;
            pass.tx_drops += drops;
            for tenant in &mut self.tenants {
                for (_, tx) in &mut tenant.tx {
                    let _ = tx.flush_tx();
                }
            }
        }
        pass
    }

    /// Lifetime socket syscalls issued by the daemon's RX/TX endpoints —
    /// zero on backends that do not hit the kernel (mem), one per
    /// datagram on `std`, one per burst on `mmsg`. The benches gate the
    /// mmsg speedup on this number.
    pub fn io_syscalls(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| {
                t.rx.iter().map(|rx| rx.syscalls()).sum::<u64>()
                    + t.tx.iter().map(|(_, tx)| tx.syscalls()).sum::<u64>()
            })
            .sum()
    }

    /// Applies a validated new config to the running daemon as a diff.
    /// Route-only tenant changes are patched into the live tables (the
    /// per-shard forks observe them lock-free); new tenants are
    /// registered; removed or structurally changed tenants are retired
    /// (their pool slots and counters remain, inactive). The `[daemon]`
    /// section must be unchanged. On error nothing is applied for the
    /// failing tenant onward; earlier diff steps may already be live —
    /// callers should treat a reload error as a reason to drain.
    pub fn reload(&mut self, new: Config) -> Result<ReloadReport, DaemonError> {
        self.cfg.reloadable_from(&new)?;
        let mut report = ReloadReport::default();

        // Retire active tenants the new config no longer lists.
        for tenant in &mut self.tenants {
            if tenant.active && new.tenant(&tenant.cfg.name).is_none() {
                tenant.active = false;
                tenant.rx.clear();
                tenant.tx.clear();
                report.removed.push(tenant.cfg.name.clone());
            }
        }

        for tenant_cfg in &new.tenants {
            let slot = self.tenants.iter().position(|t| t.active && t.cfg.name == tenant_cfg.name);
            match slot {
                Some(slot) => match self.tenants[slot].cfg.diff(tenant_cfg) {
                    TenantDiff::Identical => report.unchanged += 1,
                    TenantDiff::Tunable { routes_changed, qos_changed } => {
                        let tenant = &mut self.tenants[slot];
                        if routes_changed {
                            // Removals first, then inserts: a changed next
                            // hop is remove+insert of the same prefix.
                            for route in &tenant.cfg.routes {
                                if !tenant_cfg.routes.contains(route) {
                                    remove_route(&tenant.template, route);
                                }
                            }
                            for route in &tenant_cfg.routes {
                                if !tenant.cfg.routes.contains(route) {
                                    apply_route(&mut tenant.template, route);
                                }
                            }
                            report.routes_changed.push(tenant_cfg.name.clone());
                        }
                        if qos_changed {
                            // Weight/quota/budget land through the
                            // dispatcher's lock-free QoS cells — the slot,
                            // its sockets and its per-shard forks are
                            // untouched.
                            self.pool.update_tenant_qos(tenant.id, tenant_cfg.qos.runtime());
                            report.retuned.push(tenant_cfg.name.clone());
                        }
                        tenant.cfg = tenant_cfg.clone();
                    }
                    TenantDiff::Structural => {
                        // Structural change: SIDs/VRFs/sockets live in
                        // per-fork snapshots the pool cannot patch — retire
                        // the slot and bring the tenant up fresh under a
                        // new pool id.
                        let tenant = &mut self.tenants[slot];
                        tenant.active = false;
                        tenant.rx.clear();
                        tenant.tx.clear();
                        self.spawn_tenant(&new, tenant_cfg)?;
                        report.rebuilt.push(tenant_cfg.name.clone());
                    }
                },
                None => {
                    self.spawn_tenant(&new, tenant_cfg)?;
                    report.added.push(tenant_cfg.name.clone());
                }
            }
        }
        self.cfg = new;
        self.sync_shared();
        Ok(report)
    }

    /// Graceful shutdown: stop intake (RX sockets closed), run the
    /// pool's drain barrier, emit the final window's forwarded packets,
    /// stop the stats server, and report the terminal per-tenant
    /// counters.
    pub fn drain(mut self) -> DaemonDrainReport {
        for tenant in &mut self.tenants {
            tenant.rx.clear();
        }
        let Srv6Daemon { pool, mut tenants, stats, .. } = self;
        let mut drain = pool.drain();
        // The pool is quiesced — the final window's buffers just drop.
        emit_outputs(&mut tenants, std::mem::take(&mut drain.last_flush.outputs), |_packet| {});
        for tenant in &mut tenants {
            for (_, tx) in &mut tenant.tx {
                let _ = tx.flush_tx();
            }
        }
        if let Some(stats) = stats {
            stats.stop();
        }
        let finals = tenants
            .iter()
            .enumerate()
            .map(|(slot, tenant)| TenantFinal {
                name: tenant.cfg.name.clone(),
                active: tenant.active,
                totals: drain.counters.tenants.get(slot).map(|t| t.totals()).unwrap_or_default(),
                rx_frames: tenant.io.rx_frames.load(Ordering::Relaxed),
                tx_frames: tenant.io.tx_frames.load(Ordering::Relaxed),
                tx_drops: tenant.io.tx_drops.load(Ordering::Relaxed),
            })
            .collect();
        DaemonDrainReport { tenants: finals, drain }
    }

    /// Registers `tenant_cfg` as a fresh pool tenant and opens its
    /// sockets; the new slot is appended (slot index = pool tenant
    /// index, an invariant reloads preserve by never removing slots).
    fn spawn_tenant(&mut self, cfg: &Config, tenant_cfg: &TenantConfig) -> Result<(), DaemonError> {
        let template = build_datapath(tenant_cfg);
        let id = self.pool.add_tenant(TenantSpec::from_datapath(&template).qos(tenant_cfg.qos.runtime()));
        debug_assert_eq!(id.index(), self.tenants.len(), "slot/tenant index alignment");
        let runtime = open_tenant(&mut *self.backend, cfg, tenant_cfg.clone(), id, template)?;
        self.tenants.push(runtime);
        Ok(())
    }

    fn sync_shared(&self) {
        self.shared.set_tenants(
            self.tenants
                .iter()
                .map(|t| TenantMeta {
                    name: t.cfg.name.clone(),
                    active: t.active,
                    io: Arc::clone(&t.io),
                    budget: t.cfg.qos.budget,
                })
                .collect(),
        );
    }
}

/// Feeds one RX burst into any ingress endpoint. The daemon is written
/// against the pool's [`Ingress`] trait rather than a concrete handle, so
/// the same path serves a tenant handle or a bare (default-tenant) pool.
fn ingest_burst<'a>(
    ingress: &mut impl Ingress,
    now_ns: u64,
    frames: impl IntoIterator<Item = &'a [u8]>,
) -> usize {
    ingress.enqueue_bytes_all(now_ns, frames)
}

/// Emits a flush window's `Forward` verdicts, batched: outputs are
/// grouped by (tenant slot, egress interface) and each group moves
/// through one [`PacketTx::send_frames`] call — a single `sendmmsg(2)`
/// on the mmsg backend, a per-frame loop elsewhere. Frames a group's
/// socket could not take (backpressure, transient errors, no socket for
/// the interface) count as TX drops, exactly as the per-frame path did.
/// Every skb is handed to `recycle` afterwards; returns (sent, dropped).
fn emit_outputs(
    tenants: &mut [TenantRuntime],
    outputs: Vec<Vec<(TenantId, seg6_core::Skb, BatchVerdict)>>,
    mut recycle: impl FnMut(netpkt::PacketBuf),
) -> (usize, usize) {
    let mut sent_total = 0;
    let mut drops = 0;
    // Split the window: forwards keep their skbs alive (the TX iovecs
    // borrow the packet bytes in place — no copy), everything else is
    // recycled straight away.
    let mut pending: Vec<(TenantId, u32, seg6_core::Skb)> = Vec::new();
    for window in outputs {
        for (tenant_id, skb, batch_verdict) in window {
            match batch_verdict.verdict {
                Verdict::Forward { oif, .. } => pending.push((tenant_id, oif, skb)),
                _ => recycle(skb.into_packet()),
            }
        }
    }
    // Stable sort gathers each (slot, oif) group while keeping the
    // frames of a group in emission order.
    pending.sort_by_key(|(tenant_id, oif, _)| (tenant_id.index(), *oif));
    let mut frames: Vec<&[u8]> = Vec::new();
    let mut start = 0;
    while start < pending.len() {
        let (tenant_id, oif, _) = pending[start];
        let mut end = start;
        frames.clear();
        while end < pending.len() && pending[end].0 == tenant_id && pending[end].1 == oif {
            frames.push(pending[end].2.packet.data());
            end += 1;
        }
        match tenants.get_mut(tenant_id.index()) {
            Some(tenant) => {
                let sent = match tenant.tx.iter_mut().find(|(i, _)| *i == oif) {
                    Some((_, tx)) => tx.send_frames(&frames).unwrap_or(0),
                    None => 0,
                };
                tenant.io.tx_frames.fetch_add(sent as u64, Ordering::Relaxed);
                tenant.io.tx_drops.fetch_add((frames.len() - sent) as u64, Ordering::Relaxed);
                sent_total += sent;
                drops += frames.len() - sent;
            }
            None => drops += frames.len(),
        }
        start = end;
    }
    for (_, _, skb) in pending {
        recycle(skb.into_packet());
    }
    (sent_total, drops)
}

/// Opens a tenant's sockets (one RX per queue, one TX per peer) and
/// assembles its runtime slot.
fn open_tenant(
    backend: &mut dyn IoBackend,
    cfg: &Config,
    tenant_cfg: TenantConfig,
    id: TenantId,
    template: Seg6Datapath,
) -> Result<TenantRuntime, DaemonError> {
    let mut rx = Vec::with_capacity(cfg.daemon.workers as usize);
    for queue in 0..cfg.daemon.workers {
        rx.push(backend.open_rx(&tenant_cfg.name, queue, tenant_cfg.listen_addr(queue))?);
    }
    let mut tx = Vec::with_capacity(tenant_cfg.peers.len());
    for (oif, peer) in &tenant_cfg.peers {
        tx.push((*oif, backend.open_tx(&tenant_cfg.name, *oif, *peer)?));
    }
    Ok(TenantRuntime {
        cfg: tenant_cfg,
        id,
        template,
        rx,
        tx,
        io: Arc::new(TenantIo::default()),
        active: true,
    })
}
