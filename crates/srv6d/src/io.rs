//! The daemon's transport seam: how tenant queues get their sockets.
//!
//! [`IoBackend`] is the factory the daemon asks for one receiver per
//! (tenant, RX queue) and one transmitter per (tenant, egress interface).
//! [`UdpBackend`] is the real thing — bound/connected UDP sockets over
//! [`netpkt::sockio`] — and [`MemBackend`] is the deterministic in-memory
//! fabric lifecycle tests run the whole daemon on: same daemon code, no
//! network, every injected frame observable on the far side.

use crate::config::IoBackendChoice;
use netpkt::sockio::mmsg::{self, MmsgRx, MmsgTx};
use netpkt::sockio::{mem_link, FrameBatch, MemRx, MemTx, PacketRx, PacketTx, UdpRx, UdpTx};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

/// Opens the sockets a tenant's datapath plugs into. One call per RX
/// queue and one per egress interface, at tenant bring-up (start or
/// reload).
pub trait IoBackend: Send {
    /// A receiver for `tenant`'s RX queue `queue`, listening on `listen`.
    fn open_rx(&mut self, tenant: &str, queue: u32, listen: SocketAddr) -> io::Result<Box<dyn PacketRx>>;

    /// A transmitter for `tenant`'s egress interface `oif`, emitting to
    /// `peer`.
    fn open_tx(&mut self, tenant: &str, oif: u32, peer: SocketAddr) -> io::Result<Box<dyn PacketTx>>;
}

/// The production backend: one non-blocking UDP socket bound per RX
/// queue, one connected UDP socket per egress interface.
#[derive(Debug, Default)]
pub struct UdpBackend;

impl IoBackend for UdpBackend {
    fn open_rx(&mut self, _tenant: &str, _queue: u32, listen: SocketAddr) -> io::Result<Box<dyn PacketRx>> {
        Ok(Box::new(UdpRx::bind(listen)?))
    }

    fn open_tx(&mut self, _tenant: &str, _oif: u32, peer: SocketAddr) -> io::Result<Box<dyn PacketTx>> {
        Ok(Box::new(UdpTx::connect(peer)?))
    }
}

/// The raw-syscall backend: `recvmmsg(2)`/`sendmmsg(2)` sockets from
/// [`netpkt::sockio::mmsg`], moving a whole burst per syscall. Linux
/// only — [`resolve_backend`] decides whether to hand this one out.
#[derive(Debug, Default)]
pub struct MmsgBackend;

impl IoBackend for MmsgBackend {
    fn open_rx(&mut self, _tenant: &str, _queue: u32, listen: SocketAddr) -> io::Result<Box<dyn PacketRx>> {
        Ok(Box::new(MmsgRx::bind(listen)?))
    }

    fn open_tx(&mut self, _tenant: &str, _oif: u32, peer: SocketAddr) -> io::Result<Box<dyn PacketTx>> {
        Ok(Box::new(MmsgTx::connect(peer)?))
    }
}

/// Resolves the configured `io-backend` choice to a concrete backend plus
/// the name `srv6d check` and the startup banner print. `std` and `mmsg`
/// are literal; `auto` takes mmsg where the host supports it and falls
/// back to std elsewhere — the callers never `cfg` on the platform, the
/// same pattern as the exec-tier auto-pick. Asking for `mmsg` explicitly
/// on a host without it is a start-time error, not a silent downgrade.
pub fn resolve_backend(choice: IoBackendChoice) -> io::Result<(Box<dyn IoBackend>, &'static str)> {
    match choice {
        IoBackendChoice::Std => Ok((Box::new(UdpBackend), "std")),
        IoBackendChoice::Mmsg => {
            if mmsg::supported() {
                Ok((Box::new(MmsgBackend), "mmsg"))
            } else {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "io-backend = mmsg requires Linux (use 'auto' to fall back)",
                ))
            }
        }
        IoBackendChoice::Auto => {
            if mmsg::supported() {
                Ok((Box::new(MmsgBackend), "mmsg"))
            } else {
                Ok((Box::new(UdpBackend), "std"))
            }
        }
    }
}

/// The far ends of every link a [`MemBackend`] has opened: injectors for
/// the daemon's RX queues, taps on its egress interfaces. Keys are what
/// the daemon asked for — `(tenant name, queue)` and `(tenant name, oif)`.
#[derive(Default)]
struct MemFabric {
    ingress: HashMap<(String, u32), MemTx>,
    egress: HashMap<(String, u32), MemRx>,
}

/// In-memory [`IoBackend`]: every `open_rx`/`open_tx` mints a bounded
/// [`mem_link`] and keeps the far end, so a test can push frames at any
/// tenant queue and drain any egress interface deterministically.
/// Clones share one fabric — keep one clone as the test's handle.
#[derive(Clone)]
pub struct MemBackend {
    fabric: Arc<Mutex<MemFabric>>,
    capacity: usize,
}

impl MemBackend {
    /// A backend whose links buffer at most `capacity` undelivered frames.
    pub fn new(capacity: usize) -> Self {
        MemBackend { fabric: Arc::new(Mutex::new(MemFabric::default())), capacity }
    }

    /// Injects one frame at `tenant`'s RX queue `queue`. `false` when the
    /// link is full (backpressure) or the queue was never opened.
    pub fn inject(&self, tenant: &str, queue: u32, frame: &[u8]) -> bool {
        let mut fabric = self.fabric.lock().expect("mem fabric lock");
        match fabric.ingress.get_mut(&(tenant.to_string(), queue)) {
            Some(tx) => tx.send_frame(frame).unwrap_or(false),
            None => false,
        }
    }

    /// Drains frames the daemon emitted on `tenant`'s interface `oif` into
    /// `batch`, returning how many arrived.
    pub fn drain_egress(&self, tenant: &str, oif: u32, batch: &mut FrameBatch) -> usize {
        let mut fabric = self.fabric.lock().expect("mem fabric lock");
        match fabric.egress.get_mut(&(tenant.to_string(), oif)) {
            Some(rx) => rx.fill(batch).unwrap_or(0),
            None => 0,
        }
    }

    /// Frames emitted on `tenant`'s interface `oif` and not yet drained.
    pub fn egress_backlog(&self, tenant: &str, oif: u32) -> usize {
        let fabric = self.fabric.lock().expect("mem fabric lock");
        fabric.egress.get(&(tenant.to_string(), oif)).map_or(0, MemRx::backlog)
    }

    /// Whether `tenant`'s RX queue `queue` has been opened by the daemon.
    pub fn has_rx(&self, tenant: &str, queue: u32) -> bool {
        self.fabric.lock().expect("mem fabric lock").ingress.contains_key(&(tenant.to_string(), queue))
    }
}

impl IoBackend for MemBackend {
    fn open_rx(&mut self, tenant: &str, queue: u32, _listen: SocketAddr) -> io::Result<Box<dyn PacketRx>> {
        let (tx, rx) = mem_link(self.capacity);
        self.fabric.lock().expect("mem fabric lock").ingress.insert((tenant.to_string(), queue), tx);
        Ok(Box::new(rx))
    }

    fn open_tx(&mut self, tenant: &str, oif: u32, _peer: SocketAddr) -> io::Result<Box<dyn PacketTx>> {
        let (tx, rx) = mem_link(self.capacity);
        self.fabric.lock().expect("mem fabric lock").egress.insert((tenant.to_string(), oif), rx);
        Ok(Box::new(tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any_addr() -> SocketAddr {
        "[::1]:0".parse().unwrap()
    }

    #[test]
    fn mem_backend_round_trips_through_both_ends() {
        let mut backend = MemBackend::new(8);
        let handle = backend.clone();
        let mut rx = backend.open_rx("edge", 0, any_addr()).unwrap();
        let mut tx = backend.open_tx("edge", 1, any_addr()).unwrap();

        assert!(handle.has_rx("edge", 0));
        assert!(!handle.has_rx("edge", 1));
        assert!(handle.inject("edge", 0, &[1, 2, 3]));
        assert!(!handle.inject("other", 0, &[9]), "unopened queues refuse frames");

        let mut batch = FrameBatch::new(4, 64);
        assert_eq!(rx.fill(&mut batch).unwrap(), 1);
        assert_eq!(batch.frame(0), &[1, 2, 3]);

        assert!(tx.send_frame(&[4, 5]).unwrap());
        assert_eq!(handle.egress_backlog("edge", 1), 1);
        batch.clear();
        assert_eq!(handle.drain_egress("edge", 1, &mut batch), 1);
        assert_eq!(batch.frame(0), &[4, 5]);
    }
}
