//! # srv6d — a deployable SRv6 daemon over the reproduction's datapath
//!
//! Everything the workspace built so far processed packets it was handed
//! in memory; the paper's point is programmable SRv6 endpoint functions
//! on a *real* datapath. This crate is the missing edge binary: a
//! long-running daemon that
//!
//! * binds one UDP/IPv6 socket per (tenant, RX queue) and ingests with
//!   `recvmmsg`-style batched reads ([`netpkt::sockio`]) straight into
//!   recycled `BufPool` storage via the pool's `enqueue_bytes_all` — one
//!   copy in, zero allocations after warmup;
//! * runs the multi-tenant [`seg6_runtime::WorkerPool`] datapath and
//!   emits every `Forward` verdict back out of a per-interface TX socket
//!   with batched sends;
//! * reads a declarative config ([`config`]) — tenants, VRFs, routes,
//!   local SIDs, queue/shard counts — with strict load-time validation;
//! * applies live reloads as diffs ([`Srv6Daemon::reload`]): route
//!   changes patch the shared tables lock-free, tenant additions
//!   register on the running pool, removals retire slots — untouched
//!   tenants never lose a packet;
//! * drains gracefully ([`Srv6Daemon::drain`]): intake stops, a flush
//!   barrier runs, final per-tenant counters are exact;
//! * serves Prometheus text metrics and reload/drain commands on a unix
//!   socket ([`stats`]).
//!
//! The binary (`src/main.rs`) adds signal handling (SIGHUP → reload,
//! SIGTERM/SIGINT → drain), a `check` mode and a `ctl` client. The
//! library is the daemon minus the process shell, so integration tests
//! drive the identical code over loopback UDP or the in-memory
//! [`io::MemBackend`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod daemon;
pub mod io;
pub mod stats;

pub use config::{
    Config, ConfigError, DaemonConfig, IoBackendChoice, RouteSpec, SidBehaviour, SidSpec, TenantConfig,
};
pub use daemon::{DaemonDrainReport, DaemonError, ReloadReport, ServicePass, Srv6Daemon, TenantFinal};
pub use io::{resolve_backend, IoBackend, MemBackend, MmsgBackend, UdpBackend};
pub use stats::{control, ControlFlags, DaemonShared, StatsServer, TenantIo, TenantMeta};
