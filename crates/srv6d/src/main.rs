//! The `srv6d` binary: process shell around [`srv6d::Srv6Daemon`].
//!
//! ```text
//! srv6d --config <path> [--stats <socket>]   run the daemon
//! srv6d check --config <path>                validate a config and exit
//! srv6d ctl <socket> <command>               talk to a running daemon
//!                                            (metrics | reload | drain | ping)
//! ```
//!
//! Signals: SIGHUP schedules a config reload (the file is re-read and
//! applied as a diff), SIGTERM/SIGINT schedule a graceful drain. The
//! same intents are reachable through the stats socket (`srv6d ctl`), so
//! deployments without signal access (and the CI smoke test) drive the
//! identical paths.

use srv6d::{resolve_backend, Config, Srv6Daemon};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Signal → atomic-flag bridge. The one unsafe block in the daemon: the
/// handlers only store to process-wide atomics, which is async-signal
/// safe; `std` already links the C runtime on Linux, so `signal(2)` is
/// declared directly instead of pulling in a libc crate.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RELOAD: AtomicBool = AtomicBool::new(false);
    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_reload(_: i32) {
        RELOAD.store(true, Ordering::Relaxed);
    }

    extern "C" fn on_stop(_: i32) {
        STOP.store(true, Ordering::Relaxed);
    }

    /// Installs the handlers: SIGHUP → reload, SIGTERM/SIGINT → stop.
    pub fn install() {
        unsafe {
            signal(SIGHUP, on_reload);
            signal(SIGTERM, on_stop);
            signal(SIGINT, on_stop);
        }
    }

    /// Takes (and clears) a pending reload request.
    pub fn take_reload() -> bool {
        RELOAD.swap(false, Ordering::Relaxed)
    }

    /// Whether a stop was requested.
    pub fn stop_requested() -> bool {
        STOP.load(Ordering::Relaxed)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: srv6d --config <path> [--stats <socket>]\n\
         \x20      srv6d check --config <path>\n\
         \x20      srv6d ctl <socket> <metrics|reload|drain|ping>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("ctl") => ctl(&args[1..]),
        Some(_) => run(&args),
        None => usage(),
    }
}

/// Parses `--config <path> [--stats <socket>]` flags.
fn parse_flags(args: &[String]) -> Option<(PathBuf, Option<PathBuf>)> {
    let mut config = None;
    let mut stats = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--config" => config = Some(PathBuf::from(iter.next()?)),
            "--stats" => stats = Some(PathBuf::from(iter.next()?)),
            _ => return None,
        }
    }
    Some((config?, stats))
}

fn check(args: &[String]) -> ExitCode {
    let Some((path, _)) = parse_flags(args) else {
        return usage();
    };
    match Config::load(&path) {
        Ok(config) => {
            println!(
                "ok: {} tenants, {} workers, {} routes, {} sids",
                config.tenants.len(),
                config.daemon.workers,
                config.tenants.iter().map(|t| t.routes.len()).sum::<usize>(),
                config.tenants.iter().map(|t| t.sids.len()).sum::<usize>()
            );
            // Resolve the io-backend exactly as `run` would, so a config
            // that cannot start here (mmsg on a non-Linux host) fails the
            // check rather than the deploy.
            match resolve_backend(config.daemon.io_backend) {
                Ok((_, name)) => {
                    println!("io-backend: {} (configured {})", name, config.daemon.io_backend)
                }
                Err(e) => {
                    eprintln!("io-backend: {e}");
                    return ExitCode::from(2);
                }
            }
            let cores = seg6_runtime::affinity::available_cores();
            let plan = config.daemon.pinning.plan(config.daemon.workers, &cores);
            println!(
                "pinning: {} ({} cores online){}",
                config.daemon.pinning,
                cores.len(),
                config
                    .daemon
                    .pin_dispatcher
                    .map(|core| format!(", dispatcher -> cpu{core}"))
                    .unwrap_or_default()
            );
            for (shard, core) in plan.iter().enumerate() {
                match core {
                    Some(core) => {
                        let node = seg6_runtime::affinity::numa_node_of_cpu(*core)
                            .map(|n| format!(" (numa {n})"))
                            .unwrap_or_default();
                        println!("  shard {shard} -> cpu{core}{node}");
                    }
                    None => println!("  shard {shard} -> unpinned"),
                }
            }
            let nodes = seg6_runtime::affinity::numa_nodes();
            if nodes.is_empty() {
                println!("numa: topology not exposed by this host");
            } else {
                for (node, cpus) in nodes {
                    println!(
                        "numa: node {} -> cpus {}",
                        node,
                        cpus.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn ctl(args: &[String]) -> ExitCode {
    let (Some(socket), Some(command)) = (args.first(), args.get(1)) else {
        return usage();
    };
    match srv6d::control(socket, command) {
        Ok(reply) => {
            print!("{reply}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("srv6d ctl: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some((path, stats)) = parse_flags(args) else {
        return usage();
    };
    let mut config = match Config::load(&path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("srv6d: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(stats) = &stats {
        config.daemon.stats_socket = Some(stats.clone());
    }
    let (backend, backend_name) = match resolve_backend(config.daemon.io_backend) {
        Ok(resolved) => resolved,
        Err(e) => {
            eprintln!("srv6d: {e}");
            return ExitCode::from(2);
        }
    };
    let mut daemon = match Srv6Daemon::start(config, backend) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("srv6d: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shared = daemon.shared();
    signals::install();
    println!(
        "srv6d: serving {} tenants on {} queues each, io-backend {backend_name}{}",
        daemon.config().tenants.len(),
        daemon.config().daemon.workers,
        daemon
            .config()
            .daemon
            .stats_socket
            .as_ref()
            .map(|p| format!(", stats on {}", p.display()))
            .unwrap_or_default()
    );

    loop {
        let pass = daemon.service();
        if signals::stop_requested() || shared.flags.stop.load(Ordering::Relaxed) {
            break;
        }
        if signals::take_reload() || shared.flags.reload.swap(false, Ordering::Relaxed) {
            match Config::load(&path) {
                Ok(mut new) => {
                    // The --stats override is part of the running config,
                    // not the file; re-apply it so the [daemon]-unchanged
                    // reload check compares like with like.
                    if let Some(stats) = &stats {
                        new.daemon.stats_socket = Some(stats.clone());
                    }
                    match daemon.reload(new) {
                        Ok(report) => println!("srv6d: {report}"),
                        Err(e) => {
                            eprintln!("srv6d: reload failed, old config (partially) kept: {e}")
                        }
                    }
                }
                Err(e) => eprintln!("srv6d: reload rejected: {e}"),
            }
        }
        if pass.rx_frames == 0 {
            // Idle: back off instead of spinning on empty sockets.
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    println!("srv6d: draining");
    let report = daemon.drain();
    for tenant in &report.tenants {
        println!(
            "srv6d: tenant {} ({}): rx {} enq {} proc {} fwd {} local {} drop {} rej {} tx {} txdrop {}",
            tenant.name,
            if tenant.active { "active" } else { "retired" },
            tenant.rx_frames,
            tenant.totals.enqueued,
            tenant.totals.processed,
            tenant.totals.forwarded,
            tenant.totals.local_delivered,
            tenant.totals.dropped,
            tenant.totals.rejected,
            tenant.tx_frames,
            tenant.tx_drops
        );
    }
    println!(
        "srv6d: drained, {} packets processed lifetime",
        report.drain.counters.tenants.iter().map(|t| t.totals().processed).sum::<u64>()
    );
    ExitCode::SUCCESS
}
