//! The daemon's operational endpoint: a unix-socket stats/control server
//! rendering Prometheus text from the pool's live counters, plus the
//! shared control flags the main loop, the signal handlers and the
//! control socket all write through.

use seg6_runtime::PoolCounters;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Asynchronous control intents, settable from a signal handler, the
/// control socket, or a test — the main loop polls them between service
/// passes.
#[derive(Debug, Default)]
pub struct ControlFlags {
    /// Re-read the config file and apply the diff (SIGHUP / `reload`).
    pub reload: AtomicBool,
    /// Stop intake and drain (SIGTERM / SIGINT / `drain`).
    pub stop: AtomicBool,
}

/// Socket-level I/O counters of one tenant, updated by the daemon's
/// service loop and read by the stats server.
#[derive(Debug, Default)]
pub struct TenantIo {
    /// Frames read off the tenant's RX sockets.
    pub rx_frames: AtomicU64,
    /// Frames emitted out of the tenant's TX sockets.
    pub tx_frames: AtomicU64,
    /// Forwarded packets that could not be emitted (backpressure, no
    /// peer for the verdict's interface, transport error).
    pub tx_drops: AtomicU64,
}

/// One tenant's row in the shared stats state. Slot `i` corresponds to
/// pool tenant index `i`; retired slots (replaced or removed by a reload)
/// stay listed with `active = false` so their counters remain scrapeable.
#[derive(Debug, Clone)]
pub struct TenantMeta {
    /// Tenant name from the config.
    pub name: String,
    /// Whether the slot is currently serving (false once retired).
    pub active: bool,
    /// The slot's socket I/O counters.
    pub io: Arc<TenantIo>,
    /// The tenant's configured cost budget (tokens/second), when capped —
    /// drives the `srv6d_budget_headroom` gauge.
    pub budget: Option<u64>,
}

/// State shared between the daemon, the stats server thread and signal
/// handlers.
pub struct DaemonShared {
    /// Control intents.
    pub flags: ControlFlags,
    counters: Arc<PoolCounters>,
    tenants: Mutex<Vec<TenantMeta>>,
    /// The previous scrape's per-slot cost totals and timestamp — the
    /// window the `srv6d_cost_rate` gauge differentiates over.
    rate_window: Mutex<Option<(Instant, Vec<u64>)>>,
}

impl DaemonShared {
    /// Builds the shared state over the pool's live counters.
    pub fn new(counters: Arc<PoolCounters>) -> Arc<Self> {
        Arc::new(DaemonShared {
            flags: ControlFlags::default(),
            counters,
            tenants: Mutex::new(Vec::new()),
            rate_window: Mutex::new(None),
        })
    }

    /// Per-slot cost rates (tokens/second) since the previous scrape,
    /// advancing the window. The first scrape has no window yet and
    /// reports 0 everywhere rather than a lifetime average.
    fn cost_rates(&self, cost_now: &[u64]) -> Vec<f64> {
        let now = Instant::now();
        let mut window = self.rate_window.lock().expect("rate window lock");
        let rates = match window.as_ref() {
            Some((at, prev)) => {
                let secs = now.duration_since(*at).as_secs_f64();
                cost_now
                    .iter()
                    .enumerate()
                    .map(|(slot, &cost)| {
                        if secs <= 0.0 {
                            return 0.0;
                        }
                        cost.saturating_sub(prev.get(slot).copied().unwrap_or(0)) as f64 / secs
                    })
                    .collect()
            }
            None => vec![0.0; cost_now.len()],
        };
        *window = Some((now, cost_now.to_vec()));
        rates
    }

    /// Replaces the tenant listing (called by the daemon at start and
    /// after every reload).
    pub fn set_tenants(&self, tenants: Vec<TenantMeta>) {
        *self.tenants.lock().expect("tenant meta lock") = tenants;
    }

    /// A copy of the current tenant listing.
    pub fn tenants(&self) -> Vec<TenantMeta> {
        self.tenants.lock().expect("tenant meta lock").clone()
    }

    /// Renders the Prometheus text exposition of the current state: the
    /// per-tenant × per-shard pool counters plus each slot's socket I/O
    /// totals and an `active` gauge.
    pub fn render_metrics(&self) -> String {
        let snapshot = self.counters.snapshot();
        let metas = self.tenants();
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP srv6d_{name} {help}");
            let _ = writeln!(out, "# TYPE srv6d_{name} counter");
        };
        let gauge = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP srv6d_{name} {help}");
            let _ = writeln!(out, "# TYPE srv6d_{name} gauge");
        };
        let cost_now: Vec<u64> =
            snapshot.tenants.iter().map(|t| t.shards.iter().map(|s| s.cost).sum()).collect();
        let rates = self.cost_rates(&cost_now);

        counter(&mut out, "tenant_active", "Whether the tenant slot is currently serving (gauge).");
        for (slot, meta) in metas.iter().enumerate() {
            let _ = writeln!(
                out,
                "srv6d_tenant_active{{tenant=\"{}\",slot=\"{slot}\"}} {}",
                meta.name,
                u8::from(meta.active)
            );
        }
        for (name, help, pick) in [
            ("enqueued_total", "Packets admitted to shard rings.", 0usize),
            ("rejected_total", "Packets refused by full shard rings.", 1),
            ("processed_total", "Packets the datapath processed.", 2),
            ("forwarded_total", "Forward verdicts.", 3),
            ("local_delivered_total", "Local-delivery verdicts.", 4),
            ("dropped_total", "Drop verdicts.", 5),
            ("rejected_over_budget_total", "Packets shed by an exhausted cost budget.", 6),
            ("cost_total", "Cost-model units charged for processed work.", 7),
        ] {
            counter(&mut out, name, help);
            for (slot, tenant) in snapshot.tenants.iter().enumerate() {
                let label = metas.get(slot).map_or("?", |m| m.name.as_str());
                for (shard, row) in tenant.shards.iter().enumerate() {
                    let value = [
                        row.enqueued,
                        row.rejected,
                        row.processed,
                        row.forwarded,
                        row.local_delivered,
                        row.dropped,
                        row.rejected_over_budget,
                        row.cost,
                    ][pick];
                    let _ = writeln!(
                        out,
                        "srv6d_{name}{{tenant=\"{label}\",slot=\"{slot}\",shard=\"{shard}\"}} {value}"
                    );
                }
            }
        }
        for (name, help, pick) in [
            ("rx_frames_total", "Frames read off RX sockets.", 0usize),
            ("tx_frames_total", "Frames emitted out of TX sockets.", 1),
            ("tx_drops_total", "Forwarded packets not emitted (backpressure or no peer).", 2),
        ] {
            counter(&mut out, name, help);
            for (slot, meta) in metas.iter().enumerate() {
                let value =
                    [&meta.io.rx_frames, &meta.io.tx_frames, &meta.io.tx_drops][pick].load(Ordering::Relaxed);
                let _ = writeln!(out, "srv6d_{name}{{tenant=\"{}\",slot=\"{slot}\"}} {value}", meta.name);
            }
        }
        gauge(&mut out, "cost_rate", "Cost-model tokens charged per second over the scrape window.");
        for (slot, rate) in rates.iter().enumerate() {
            let label = metas.get(slot).map_or("?", |m| m.name.as_str());
            let _ = writeln!(out, "srv6d_cost_rate{{tenant=\"{label}\",slot=\"{slot}\"}} {rate:.3}");
        }
        gauge(
            &mut out,
            "budget_headroom",
            "Configured cost budget minus the observed cost rate (budgeted tenants only; \
             negative while the shedder is clamping).",
        );
        for (slot, meta) in metas.iter().enumerate() {
            if let Some(budget) = meta.budget {
                let headroom = budget as f64 - rates.get(slot).copied().unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "srv6d_budget_headroom{{tenant=\"{}\",slot=\"{slot}\"}} {headroom:.3}",
                    meta.name
                );
            }
        }
        gauge(&mut out, "shard_pinned_core", "CPU core the shard thread is pinned to (-1 = unpinned).");
        for (shard, placement) in snapshot.placement.iter().enumerate() {
            let core = placement.pinned_core.map_or(-1, i64::from);
            let _ = writeln!(out, "srv6d_shard_pinned_core{{shard=\"{shard}\"}} {core}");
        }
        gauge(
            &mut out,
            "shard_numa_node",
            "NUMA node backing the shard's arena segment (-1 = unknown/unpinned).",
        );
        for (shard, placement) in snapshot.placement.iter().enumerate() {
            let node = placement.numa_node.map_or(-1, i64::from);
            let _ = writeln!(out, "srv6d_shard_numa_node{{shard=\"{shard}\"}} {node}");
        }
        out
    }
}

/// The stats/control server: a thread accepting connections on a unix
/// socket. Protocol: the client sends one line — `metrics` (or an empty
/// line, or an HTTP `GET`) to scrape, `reload` / `drain` to set the
/// matching control flag, `ping` to probe — and the server replies and
/// closes.
pub struct StatsServer {
    path: PathBuf,
    halt: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `path` (removing a stale socket file first) and spawns the
    /// accept loop.
    pub fn spawn(path: impl AsRef<Path>, shared: Arc<DaemonShared>) -> std::io::Result<StatsServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let halt = Arc::new(AtomicBool::new(false));
        let halt_thread = Arc::clone(&halt);
        let handle = std::thread::Builder::new().name("srv6d-stats".into()).spawn(move || {
            while !halt_thread.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => serve_one(stream, &shared),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        })?;
        Ok(StatsServer { path, halt, handle: Some(handle) })
    }

    /// The socket path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the accept loop, joins the thread and removes the socket
    /// file.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.halt.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: UnixStream, shared: &DaemonShared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 256];
    let mut line = String::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                line.push_str(&String::from_utf8_lossy(&buf[..n]));
                if line.contains('\n') || line.len() > 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let command = line.lines().next().unwrap_or("").trim();
    let http = command.starts_with("GET ");
    let body = match command {
        "" | "metrics" => shared.render_metrics(),
        _ if http => shared.render_metrics(),
        "reload" => {
            shared.flags.reload.store(true, Ordering::Relaxed);
            "ok reload scheduled\n".to_string()
        }
        "drain" => {
            shared.flags.stop.store(true, Ordering::Relaxed);
            "ok draining\n".to_string()
        }
        "ping" => "ok\n".to_string(),
        other => format!("err unknown command `{other}`\n"),
    };
    if http {
        let _ = write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
    }
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Client side of the control protocol: sends `command` to the server at
/// `path` and returns the reply (what `srv6d ctl` prints).
pub fn control(path: impl AsRef<Path>, command: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(command.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reply = String::new();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.read_to_string(&mut reply)?;
    Ok(reply)
}
