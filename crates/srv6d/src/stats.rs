//! The daemon's operational endpoint: a unix-socket stats/control server
//! rendering Prometheus text from the pool's live counters, plus the
//! shared control flags the main loop, the signal handlers and the
//! control socket all write through.

use seg6_runtime::PoolCounters;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Asynchronous control intents, settable from a signal handler, the
/// control socket, or a test — the main loop polls them between service
/// passes.
#[derive(Debug, Default)]
pub struct ControlFlags {
    /// Re-read the config file and apply the diff (SIGHUP / `reload`).
    pub reload: AtomicBool,
    /// Stop intake and drain (SIGTERM / SIGINT / `drain`).
    pub stop: AtomicBool,
}

/// Socket-level I/O counters of one tenant, updated by the daemon's
/// service loop and read by the stats server.
#[derive(Debug, Default)]
pub struct TenantIo {
    /// Frames read off the tenant's RX sockets.
    pub rx_frames: AtomicU64,
    /// Frames emitted out of the tenant's TX sockets.
    pub tx_frames: AtomicU64,
    /// Forwarded packets that could not be emitted (backpressure, no
    /// peer for the verdict's interface, transport error).
    pub tx_drops: AtomicU64,
}

/// One tenant's row in the shared stats state. Slot `i` corresponds to
/// pool tenant index `i`; retired slots (replaced or removed by a reload)
/// stay listed with `active = false` so their counters remain scrapeable.
#[derive(Debug, Clone)]
pub struct TenantMeta {
    /// Tenant name from the config.
    pub name: String,
    /// Whether the slot is currently serving (false once retired).
    pub active: bool,
    /// The slot's socket I/O counters.
    pub io: Arc<TenantIo>,
}

/// State shared between the daemon, the stats server thread and signal
/// handlers.
pub struct DaemonShared {
    /// Control intents.
    pub flags: ControlFlags,
    counters: Arc<PoolCounters>,
    tenants: Mutex<Vec<TenantMeta>>,
}

impl DaemonShared {
    /// Builds the shared state over the pool's live counters.
    pub fn new(counters: Arc<PoolCounters>) -> Arc<Self> {
        Arc::new(DaemonShared { flags: ControlFlags::default(), counters, tenants: Mutex::new(Vec::new()) })
    }

    /// Replaces the tenant listing (called by the daemon at start and
    /// after every reload).
    pub fn set_tenants(&self, tenants: Vec<TenantMeta>) {
        *self.tenants.lock().expect("tenant meta lock") = tenants;
    }

    /// A copy of the current tenant listing.
    pub fn tenants(&self) -> Vec<TenantMeta> {
        self.tenants.lock().expect("tenant meta lock").clone()
    }

    /// Renders the Prometheus text exposition of the current state: the
    /// per-tenant × per-shard pool counters plus each slot's socket I/O
    /// totals and an `active` gauge.
    pub fn render_metrics(&self) -> String {
        let snapshot = self.counters.snapshot();
        let metas = self.tenants();
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP srv6d_{name} {help}");
            let _ = writeln!(out, "# TYPE srv6d_{name} counter");
        };

        counter(&mut out, "tenant_active", "Whether the tenant slot is currently serving (gauge).");
        for (slot, meta) in metas.iter().enumerate() {
            let _ = writeln!(
                out,
                "srv6d_tenant_active{{tenant=\"{}\",slot=\"{slot}\"}} {}",
                meta.name,
                u8::from(meta.active)
            );
        }
        for (name, help, pick) in [
            ("enqueued_total", "Packets admitted to shard rings.", 0usize),
            ("rejected_total", "Packets refused by full shard rings.", 1),
            ("processed_total", "Packets the datapath processed.", 2),
            ("forwarded_total", "Forward verdicts.", 3),
            ("local_delivered_total", "Local-delivery verdicts.", 4),
            ("dropped_total", "Drop verdicts.", 5),
            ("rejected_over_budget_total", "Packets shed by an exhausted cost budget.", 6),
            ("cost_total", "Cost-model units charged for processed work.", 7),
        ] {
            counter(&mut out, name, help);
            for (slot, tenant) in snapshot.tenants.iter().enumerate() {
                let label = metas.get(slot).map_or("?", |m| m.name.as_str());
                for (shard, row) in tenant.shards.iter().enumerate() {
                    let value = [
                        row.enqueued,
                        row.rejected,
                        row.processed,
                        row.forwarded,
                        row.local_delivered,
                        row.dropped,
                        row.rejected_over_budget,
                        row.cost,
                    ][pick];
                    let _ = writeln!(
                        out,
                        "srv6d_{name}{{tenant=\"{label}\",slot=\"{slot}\",shard=\"{shard}\"}} {value}"
                    );
                }
            }
        }
        for (name, help, pick) in [
            ("rx_frames_total", "Frames read off RX sockets.", 0usize),
            ("tx_frames_total", "Frames emitted out of TX sockets.", 1),
            ("tx_drops_total", "Forwarded packets not emitted (backpressure or no peer).", 2),
        ] {
            counter(&mut out, name, help);
            for (slot, meta) in metas.iter().enumerate() {
                let value =
                    [&meta.io.rx_frames, &meta.io.tx_frames, &meta.io.tx_drops][pick].load(Ordering::Relaxed);
                let _ = writeln!(out, "srv6d_{name}{{tenant=\"{}\",slot=\"{slot}\"}} {value}", meta.name);
            }
        }
        out
    }
}

/// The stats/control server: a thread accepting connections on a unix
/// socket. Protocol: the client sends one line — `metrics` (or an empty
/// line, or an HTTP `GET`) to scrape, `reload` / `drain` to set the
/// matching control flag, `ping` to probe — and the server replies and
/// closes.
pub struct StatsServer {
    path: PathBuf,
    halt: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `path` (removing a stale socket file first) and spawns the
    /// accept loop.
    pub fn spawn(path: impl AsRef<Path>, shared: Arc<DaemonShared>) -> std::io::Result<StatsServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let halt = Arc::new(AtomicBool::new(false));
        let halt_thread = Arc::clone(&halt);
        let handle = std::thread::Builder::new().name("srv6d-stats".into()).spawn(move || {
            while !halt_thread.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => serve_one(stream, &shared),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        })?;
        Ok(StatsServer { path, halt, handle: Some(handle) })
    }

    /// The socket path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the accept loop, joins the thread and removes the socket
    /// file.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.halt.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: UnixStream, shared: &DaemonShared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 256];
    let mut line = String::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                line.push_str(&String::from_utf8_lossy(&buf[..n]));
                if line.contains('\n') || line.len() > 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let command = line.lines().next().unwrap_or("").trim();
    let http = command.starts_with("GET ");
    let body = match command {
        "" | "metrics" => shared.render_metrics(),
        _ if http => shared.render_metrics(),
        "reload" => {
            shared.flags.reload.store(true, Ordering::Relaxed);
            "ok reload scheduled\n".to_string()
        }
        "drain" => {
            shared.flags.stop.store(true, Ordering::Relaxed);
            "ok draining\n".to_string()
        }
        "ping" => "ok\n".to_string(),
        other => format!("err unknown command `{other}`\n"),
    };
    if http {
        let _ = write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
    }
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Client side of the control protocol: sends `command` to the server at
/// `path` and returns the reply (what `srv6d ctl` prints).
pub fn control(path: impl AsRef<Path>, command: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(command.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut reply = String::new();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.read_to_string(&mut reply)?;
    Ok(reply)
}
