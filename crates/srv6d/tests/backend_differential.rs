//! Differential backend test: the same traffic profile pushed through
//! the in-memory fabric, the std UDP backend and the raw
//! `recvmmsg`/`sendmmsg` backend must leave the daemon in the same
//! state — identical verdict counters, identical socket I/O totals, the
//! identical multiset of emitted frames, and a mint-flat buffer arena
//! after warmup on every backend. The backends differ only in how bytes
//! cross the kernel boundary; any divergence here is a backend bug, not
//! a datapath one.

use netpkt::packet::build_ipv6_udp_packet;
use netpkt::sockio::{FrameBatch, PacketRx, UdpRx};
use srv6d::{Config, IoBackend, MemBackend, MmsgBackend, Srv6Daemon, UdpBackend};
use std::net::Ipv6Addr;
use std::time::{Duration, Instant};

/// Frames per pass; two passes run (warmup + measured).
const FRAMES: usize = 256;
/// Of each pass, frames minted with hop limit 0 — dropped at forward.
const EXPIRED_PER_PASS: usize = FRAMES / 4;
const FORWARDED_PER_PASS: usize = FRAMES - EXPIRED_PER_PASS;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// The shared traffic profile: 3 forwardable frames (hop limit 64) to
/// every 1 already-expired frame (hop limit 0, dropped at forward).
fn traffic() -> Vec<Vec<u8>> {
    (0..FRAMES as u32)
        .map(|flow| {
            let hops = if flow % 4 == 3 { 0 } else { 64 };
            build_ipv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                addr("2001:db8:f::1"),
                (1024 + flow % 40_000) as u16,
                5001,
                &[0u8; 32],
                hops,
            )
            .data()
            .to_vec()
        })
        .collect()
}

/// Everything one backend run leaves behind, normalised for comparison.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    enqueued: u64,
    rejected: u64,
    processed: u64,
    forwarded: u64,
    local_delivered: u64,
    dropped: u64,
    rx_frames: u64,
    tx_frames: u64,
    tx_drops: u64,
    /// Every frame that came out of the egress, sorted — forwarding is
    /// deterministic, so the emitted bytes must match across backends.
    egress: Vec<Vec<u8>>,
    /// Arena mints during the measured (second) pass — must be zero.
    minted_in_pass_two: u64,
}

fn daemon_config(listen_port: u16, peer_port: u16) -> Config {
    Config::parse(&format!(
        "[daemon]\nworkers = 1\nbatch-size = 32\nqueue-depth = 2048\nrx-burst = 64\n\
         [tenant edge]\nlocal = fc00::1\nlisten = [::1]:{listen_port}\npeer = 1 [::1]:{peer_port}\n\
         route = ::/0 dev 1"
    ))
    .expect("valid config")
}

fn outcome_of(daemon: Srv6Daemon, mut egress: Vec<Vec<u8>>, minted_in_pass_two: u64) -> Outcome {
    let totals = daemon.pool().counters().snapshot().tenants[0].totals();
    let report = daemon.drain();
    let io = &report.tenants[0];
    egress.sort();
    Outcome {
        enqueued: totals.enqueued,
        rejected: totals.rejected,
        processed: totals.processed,
        forwarded: totals.forwarded,
        local_delivered: totals.local_delivered,
        dropped: totals.dropped,
        rx_frames: io.rx_frames,
        tx_frames: io.tx_frames,
        tx_drops: io.tx_drops,
        egress,
        minted_in_pass_two,
    }
}

/// Runs both passes over the in-memory fabric.
fn run_mem(frames: &[Vec<u8>]) -> Outcome {
    let mem = MemBackend::new(4 * FRAMES);
    let mut daemon = Srv6Daemon::start(daemon_config(46000, 46100), Box::new(mem.clone())).expect("starts");
    let mut egress = Vec::new();
    let mut batch = FrameBatch::new(FRAMES, 2048);
    let mut minted_in_pass_two = 0;
    for pass in 0..2 {
        let minted_before = daemon.pool().buf_pool().allocations();
        for frame in frames {
            assert!(mem.inject("edge", 0, frame), "mem link backpressured");
        }
        let target = (pass + 1) as u64 * FRAMES as u64;
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.pool().counters().snapshot().tenants[0].totals().processed < target {
            daemon.service();
            batch.clear();
            let got = mem.drain_egress("edge", 1, &mut batch);
            egress.extend(batch.frames().take(got).map(<[u8]>::to_vec));
            assert!(Instant::now() < deadline, "mem backend stalled");
        }
        loop {
            batch.clear();
            let got = mem.drain_egress("edge", 1, &mut batch);
            if got == 0 {
                break;
            }
            egress.extend(batch.frames().take(got).map(<[u8]>::to_vec));
        }
        if pass == 1 {
            minted_in_pass_two = daemon.pool().buf_pool().allocations() - minted_before;
        }
    }
    outcome_of(daemon, egress, minted_in_pass_two)
}

/// Runs both passes over a kernel-socket backend (std or mmsg): frames
/// go in through a real loopback sender, come back out on a capture
/// socket bound to the tenant's peer address.
fn run_socket(backend: Box<dyn IoBackend>, listen_port: u16, peer_port: u16, frames: &[Vec<u8>]) -> Outcome {
    // The capture socket must exist before the daemon connects to it.
    let mut capture = UdpRx::bind(format!("[::1]:{peer_port}")).expect("bind capture");
    let mut daemon = Srv6Daemon::start(daemon_config(listen_port, peer_port), backend).expect("starts");
    let sender = std::net::UdpSocket::bind("[::1]:0").expect("bind sender");
    let dest = format!("[::1]:{listen_port}");
    let mut egress = Vec::new();
    let mut batch = FrameBatch::new(FRAMES, 2048);
    let mut minted_in_pass_two = 0;
    for pass in 0..2 {
        let minted_before = daemon.pool().buf_pool().allocations();
        // Small chunks keep the kernel socket buffers shallow, so the
        // run is lossless without tuning.
        for chunk in frames.chunks(32) {
            for frame in chunk {
                sender.send_to(frame, &dest).expect("loopback send");
            }
            daemon.service();
            batch.clear();
            let got = capture.fill(&mut batch).unwrap_or(0);
            egress.extend(batch.frames().take(got).map(<[u8]>::to_vec));
        }
        // Service until the whole pass is processed and captured.
        let target_processed = (pass + 1) as u64 * FRAMES as u64;
        let target_egress = (pass + 1) * FORWARDED_PER_PASS;
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.pool().counters().snapshot().tenants[0].totals().processed < target_processed
            || egress.len() < target_egress
        {
            daemon.service();
            batch.clear();
            let got = capture.fill(&mut batch).unwrap_or(0);
            egress.extend(batch.frames().take(got).map(<[u8]>::to_vec));
            assert!(
                Instant::now() < deadline,
                "socket backend stalled: processed {}, captured {}",
                daemon.pool().counters().snapshot().tenants[0].totals().processed,
                egress.len()
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        if pass == 1 {
            minted_in_pass_two = daemon.pool().buf_pool().allocations() - minted_before;
        }
    }
    outcome_of(daemon, egress, minted_in_pass_two)
}

#[test]
fn all_backends_reach_the_same_state_on_the_same_traffic() {
    let frames = traffic();
    let mem = run_mem(&frames);

    // Sanity on the reference outcome before differencing against it.
    assert_eq!(mem.processed, 2 * FRAMES as u64);
    assert_eq!(mem.forwarded, 2 * FORWARDED_PER_PASS as u64);
    assert_eq!(mem.dropped, 2 * EXPIRED_PER_PASS as u64);
    assert_eq!(mem.rejected, 0);
    assert_eq!(mem.tx_drops, 0);
    assert_eq!(mem.egress.len(), 2 * FORWARDED_PER_PASS);
    assert_eq!(mem.minted_in_pass_two, 0, "steady-state pass minted arena buffers");

    let std_udp = run_socket(Box::new(UdpBackend), 46200, 46300, &frames);
    assert_eq!(std_udp, mem, "std UDP backend diverged from the in-memory reference");

    let mmsg = run_socket(Box::new(MmsgBackend), 46400, 46500, &frames);
    assert_eq!(mmsg, mem, "mmsg backend diverged from the in-memory reference");
}
