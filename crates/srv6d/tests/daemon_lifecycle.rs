//! Daemon lifecycle coverage: loopback end-to-end accounting, config
//! reload diffs under load, graceful drain, and the stats/control
//! socket — the same `Srv6Daemon` code the binary runs, driven over real
//! loopback UDP or the deterministic in-memory backend.

use netpkt::packet::build_ipv6_udp_packet;
use netpkt::sockio::{send_batch, FrameBatch, PacketRx, UdpRx, UdpTx};
use srv6d::{Config, MemBackend, Srv6Daemon, UdpBackend};
use std::net::Ipv6Addr;
use std::time::{Duration, Instant};

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// One IPv6/UDP frame of flow `flow` towards `dst`.
fn frame_to(dst: &str, flow: u32) -> Vec<u8> {
    build_ipv6_udp_packet(
        addr(&format!("2001:db8::{:x}", flow + 1)),
        addr(dst),
        (1024 + flow % 40_000) as u16,
        5001,
        &[0u8; 32],
        64,
    )
    .data()
    .to_vec()
}

/// Services the daemon until the named tenant slot has processed
/// `expected` packets, or panics after a timeout.
fn service_until_processed(daemon: &mut Srv6Daemon, slot: usize, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        daemon.service();
        let processed = daemon.pool().counters().snapshot().tenants[slot].totals().processed;
        if processed >= expected {
            return;
        }
        assert!(Instant::now() < deadline, "timed out at {processed}/{expected} processed");
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// The acceptance-criteria path: real loopback UDP in, batched ingest
/// through the rings, batched UDP out — with exact `PoolCounters`
/// accounting and a mint-flat recycling arena in steady state.
#[test]
fn loopback_end_to_end_counts_every_frame() {
    const N: usize = 512;
    let config = Config::parse(
        "[daemon]\nworkers = 2\nbatch-size = 32\nqueue-depth = 2048\nrx-burst = 64\n\
         [tenant edge]\nlocal = fc00::1\nlisten = [::1]:41000\npeer = 1 [::1]:41100\nroute = ::/0 dev 1",
    )
    .expect("valid config");

    // The peer capture socket must exist before the daemon connects to it.
    let mut capture = UdpRx::bind("[::1]:41100").expect("bind capture");
    let mut daemon = Srv6Daemon::start(config, Box::new(UdpBackend)).expect("daemon starts");

    // Two RX queues: frames alternate between the bound ports. Sends,
    // daemon service passes and egress reads interleave in small bursts
    // so no loopback socket buffer ever has to absorb a whole phase.
    let mut q0 = UdpTx::connect("[::1]:41000").expect("connect queue 0");
    let mut q1 = UdpTx::connect("[::1]:41001").expect("connect queue 1");
    let frames: Vec<Vec<u8>> = (0..N as u32).map(|f| frame_to("2001:db8:f::1", f)).collect();
    let mut batch = FrameBatch::new(64, 2048);
    let mut run_phase = |daemon: &mut Srv6Daemon, capture: &mut UdpRx, q0: &mut UdpTx, q1: &mut UdpTx| {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut received = 0;
        for burst in frames.chunks(64) {
            let (a, b) = burst.split_at(burst.len() / 2);
            assert_eq!(send_batch(q0, a.iter().map(Vec::as_slice)).unwrap(), a.len());
            assert_eq!(send_batch(q1, b.iter().map(Vec::as_slice)).unwrap(), b.len());
            daemon.service();
            batch.clear();
            received += capture.fill(&mut batch).expect("capture fill");
        }
        while received < N {
            daemon.service();
            batch.clear();
            let got = capture.fill(&mut batch).expect("capture fill");
            received += got;
            assert!(Instant::now() < deadline, "egress timed out at {received}/{N}");
            if got == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        assert_eq!(received, N, "every forwarded packet came out of the egress socket");
    };

    // Warmup pass: the first N frames mint the arena and size every buffer.
    run_phase(&mut daemon, &mut capture, &mut q0, &mut q1);
    let minted = daemon.pool().buf_pool().allocations();

    // Steady state: the same load again must not mint a single buffer —
    // the mint-flat gate extended across the socket ingest boundary.
    run_phase(&mut daemon, &mut capture, &mut q0, &mut q1);
    assert_eq!(
        daemon.pool().buf_pool().allocations(),
        minted,
        "steady-state socket ingest minted fresh buffers instead of recycling"
    );

    // Exact accounting: every frame admitted, processed and forwarded.
    let totals = daemon.pool().counters().snapshot().tenants[0].totals();
    assert_eq!(totals.enqueued, 2 * N as u64);
    assert_eq!(totals.processed, 2 * N as u64);
    assert_eq!(totals.forwarded, 2 * N as u64);
    assert_eq!(totals.rejected, 0);
    assert_eq!(totals.dropped, 0);

    // Graceful drain: final counters exact, intake stopped.
    let report = daemon.drain();
    let edge = &report.tenants[0];
    assert_eq!(edge.name, "edge");
    assert!(edge.active);
    assert_eq!(edge.rx_frames, 2 * N as u64);
    assert_eq!(edge.tx_frames, 2 * N as u64);
    assert_eq!(edge.tx_drops, 0);
    assert_eq!(edge.totals.processed, 2 * N as u64);
    assert_eq!(report.drain.counters.in_flight(), 0, "the drain barrier left packets in flight");
}

const RELOAD_BASE: &str = "[daemon]\nworkers = 1\nbatch-size = 16\nqueue-depth = 1024\n\
    [tenant keep]\nlocal = fc00::1\nlisten = [::1]:42000\npeer = 1 [::1]:42100\nroute = ::/0 dev 1\n\
    [tenant change]\nlocal = fc00::2\nlisten = [::1]:42010\npeer = 1 [::1]:42110\n\
    route = 2001:db8:a::/48 dev 1\n\
    [tenant gone]\nlocal = fc00::3\nlisten = [::1]:42020\npeer = 1 [::1]:42120\nroute = ::/0 dev 1";

const RELOAD_NEXT: &str = "[daemon]\nworkers = 1\nbatch-size = 16\nqueue-depth = 1024\n\
    [tenant keep]\nlocal = fc00::1\nlisten = [::1]:42000\npeer = 1 [::1]:42100\nroute = ::/0 dev 1\n\
    [tenant change]\nlocal = fc00::2\nlisten = [::1]:42010\npeer = 1 [::1]:42110\n\
    route = 2001:db8:a::/48 dev 1\nroute = 2001:db8:b::/48 dev 1\n\
    [tenant newt]\nlocal = fc00::4\nlisten = [::1]:42030\npeer = 1 [::1]:42130\nroute = ::/0 dev 1";

/// The reload acceptance path: a route is added, a tenant removed and a
/// tenant added while traffic flows — and the untouched tenant accounts
/// for every single frame it was sent.
#[test]
fn reload_diff_under_load_preserves_untouched_tenants() {
    const K: u64 = 200;
    let mem = MemBackend::new(4096);
    let mut daemon =
        Srv6Daemon::start(Config::parse(RELOAD_BASE).unwrap(), Box::new(mem.clone())).expect("starts");

    let inject = |mem: &MemBackend, tenant: &str, dst: &str, count: u64| {
        for flow in 0..count {
            assert!(mem.inject(tenant, 0, &frame_to(dst, flow as u32)), "injection backpressured");
        }
    };

    // Phase 1: all three tenants forward. `change` drops traffic to the
    // not-yet-routed 2001:db8:b::/48.
    inject(&mem, "keep", "2001:db8:f::1", K);
    inject(&mem, "change", "2001:db8:a::1", K);
    inject(&mem, "change", "2001:db8:b::1", K);
    inject(&mem, "gone", "2001:db8:f::1", K);
    service_until_processed(&mut daemon, 0, K);
    service_until_processed(&mut daemon, 1, 2 * K);
    service_until_processed(&mut daemon, 2, K);
    let change_before = daemon.pool().counters().snapshot().tenants[1].totals();
    assert_eq!(change_before.forwarded, K, "a-prefix traffic forwarded");
    assert_eq!(change_before.dropped, K, "b-prefix traffic has no route yet");

    // Load is in flight on the untouched tenant while the reload lands.
    inject(&mem, "keep", "2001:db8:f::1", K);
    let report = daemon.reload(Config::parse(RELOAD_NEXT).unwrap()).expect("reload applies");
    assert_eq!(report.routes_changed, vec!["change".to_string()]);
    assert_eq!(report.removed, vec!["gone".to_string()]);
    assert_eq!(report.added, vec!["newt".to_string()]);
    assert_eq!(report.rebuilt, Vec::<String>::new());
    assert_eq!(report.unchanged, 1);
    inject(&mem, "keep", "2001:db8:f::1", K);

    // The untouched tenant lost nothing: every frame sent before, during
    // and after the reload is admitted, processed and forwarded.
    service_until_processed(&mut daemon, 0, 3 * K);
    let keep = daemon.pool().counters().snapshot().tenants[0].totals();
    assert_eq!(keep.enqueued, 3 * K);
    assert_eq!(keep.processed, 3 * K);
    assert_eq!(keep.forwarded, 3 * K);
    assert_eq!(keep.rejected, 0);
    assert_eq!(keep.dropped, 0);
    assert_eq!(mem.egress_backlog("keep", 1), 3 * K as usize, "all forwarded frames were emitted");

    // The route diff took effect live: b-prefix traffic now forwards.
    inject(&mem, "change", "2001:db8:b::1", K);
    service_until_processed(&mut daemon, 1, 3 * K);
    let change = daemon.pool().counters().snapshot().tenants[1].totals();
    assert_eq!(change.forwarded, 2 * K, "the added route forwards what used to drop");
    assert_eq!(change.dropped, K, "no new drops after the route landed");

    // The added tenant serves; the removed tenant is quiesced (its slot
    // and counters stay, its sockets are closed).
    inject(&mem, "newt", "2001:db8:f::1", K);
    service_until_processed(&mut daemon, 3, K);
    assert!(mem.inject("gone", 0, &frame_to("2001:db8:f::1", 0)), "old link still exists");
    for _ in 0..5 {
        daemon.service();
    }
    let gone = daemon.pool().counters().snapshot().tenants[2].totals();
    assert_eq!(gone.processed, K, "a retired tenant processes nothing more");

    let report = daemon.drain();
    assert_eq!(report.tenants.len(), 4);
    assert!(!report.tenants[2].active, "removed tenant reported as retired");
    assert_eq!(report.tenants[0].totals.processed, 3 * K);
    assert_eq!(report.drain.counters.in_flight(), 0);
}

/// Drain-on-shutdown: intake stops, the flush barrier runs, and the
/// reported per-tenant counters are final and exact.
#[test]
fn drain_stops_intake_and_reports_final_counters() {
    const N: u64 = 300;
    let mem = MemBackend::new(2048);
    let config = Config::parse(
        "[daemon]\nworkers = 2\nbatch-size = 32\nqueue-depth = 1024\n\
         [tenant solo]\nlocal = fc00::1\nlisten = [::1]:43000\npeer = 1 [::1]:43100\nroute = ::/0 dev 1",
    )
    .unwrap();
    let mut daemon = Srv6Daemon::start(config, Box::new(mem.clone())).expect("starts");

    for flow in 0..N {
        assert!(mem.inject("solo", (flow % 2) as u32, &frame_to("2001:db8:f::1", flow as u32)));
    }
    // Read everything off the sockets, then hand over to the drain while
    // the rings may still hold work — the barrier must finish it.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut read = 0;
    while read < N as usize {
        read += daemon.service().rx_frames;
        assert!(Instant::now() < deadline, "intake timed out at {read}/{N}");
    }

    let report = daemon.drain();
    let solo = &report.tenants[0];
    assert_eq!(solo.rx_frames, N, "every injected frame was read before the drain");
    assert_eq!(solo.totals.enqueued, N);
    assert_eq!(solo.totals.processed, N, "the drain barrier processed the full backlog");
    assert_eq!(solo.totals.forwarded, N);
    assert_eq!(solo.totals.rejected, 0);
    assert_eq!(solo.tx_frames, N, "every forwarded packet was emitted");
    assert_eq!(solo.tx_drops, 0);
    assert_eq!(report.drain.counters.in_flight(), 0, "nothing left in flight after the barrier");
    assert_eq!(mem.egress_backlog("solo", 1), N as usize);
    // Worker lifetime totals agree with the per-tenant accounting.
    let worker_sum: u64 = report.drain.worker_totals.iter().map(|w| w.processed).sum();
    assert_eq!(worker_sum, N);
}

/// The stats socket serves Prometheus text and accepts control verbs.
#[test]
fn stats_socket_serves_metrics_and_control() {
    let socket = std::env::temp_dir().join(format!("srv6d-test-{}.sock", std::process::id()));
    let mem = MemBackend::new(256);
    let config = Config::parse(&format!(
        "[daemon]\nworkers = 1\nstats-socket = {}\n\
         [tenant edge]\nlocal = fc00::1\nlisten = [::1]:44000\npeer = 1 [::1]:44100\nroute = ::/0 dev 1",
        socket.display()
    ))
    .unwrap();
    let mut daemon = Srv6Daemon::start(config, Box::new(mem.clone())).expect("starts");
    let shared = daemon.shared();

    assert!(mem.inject("edge", 0, &frame_to("2001:db8:f::1", 1)));
    service_until_processed(&mut daemon, 0, 1);

    assert_eq!(srv6d::control(&socket, "ping").expect("ping"), "ok\n");
    let metrics = srv6d::control(&socket, "metrics").expect("scrape");
    assert!(metrics.contains("srv6d_tenant_active{tenant=\"edge\",slot=\"0\"} 1"), "{metrics}");
    assert!(metrics.contains("srv6d_processed_total{tenant=\"edge\",slot=\"0\",shard=\"0\"} 1"), "{metrics}");
    assert!(metrics.contains("srv6d_rx_frames_total{tenant=\"edge\",slot=\"0\"} 1"), "{metrics}");

    assert!(srv6d::control(&socket, "reload").expect("reload").starts_with("ok"));
    assert!(shared.flags.reload.swap(false, std::sync::atomic::Ordering::Relaxed));
    assert!(srv6d::control(&socket, "drain").expect("drain").starts_with("ok"));
    assert!(shared.flags.stop.load(std::sync::atomic::Ordering::Relaxed));

    daemon.drain();
    assert!(!socket.exists(), "stats socket file removed on drain");
}

/// Pulls the value of the metric line starting with `prefix`.
fn metric_value(metrics: &str, prefix: &str) -> f64 {
    let line = metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no `{prefix}` line in:\n{metrics}"));
    line.rsplit(' ').next().unwrap().parse().expect("numeric metric value")
}

/// The derived gauges: `srv6d_cost_rate` differentiates the cost counter
/// over the scrape window, `srv6d_budget_headroom` subtracts it from the
/// configured budget, and the placement gauges report each shard's
/// pin/NUMA state (-1 sentinels when unpinned, as in this unpinned run).
#[test]
fn metrics_expose_cost_rates_and_placement() {
    let mem = MemBackend::new(512);
    let config = Config::parse(
        "[daemon]\nworkers = 2\n\
         [tenant edge]\nlocal = fc00::1\nlisten = [::1]:44200\npeer = 1 [::1]:44300\n\
         budget = 1000000\nroute = ::/0 dev 1",
    )
    .unwrap();
    let mut daemon = Srv6Daemon::start(config, Box::new(mem.clone())).expect("starts");
    let shared = daemon.shared();

    // First scrape opens the rate window: no history yet, rate is 0.
    let first = shared.render_metrics();
    assert_eq!(metric_value(&first, "srv6d_cost_rate{tenant=\"edge\",slot=\"0\"}"), 0.0);

    for flow in 0..64 {
        assert!(mem.inject("edge", 0, &frame_to("2001:db8:f::1", flow)));
    }
    service_until_processed(&mut daemon, 0, 64);
    std::thread::sleep(Duration::from_millis(20));

    let metrics = shared.render_metrics();
    let rate = metric_value(&metrics, "srv6d_cost_rate{tenant=\"edge\",slot=\"0\"}");
    assert!(rate > 0.0, "cost accrued this window must show as a positive rate: {metrics}");
    let headroom = metric_value(&metrics, "srv6d_budget_headroom{tenant=\"edge\",slot=\"0\"}");
    assert!(headroom < 1_000_000.0, "headroom = budget - rate: {metrics}");
    assert!((headroom - (1_000_000.0 - rate)).abs() < 1e-6, "{headroom} vs {rate}");

    // No `pin =` key: both shards report the -1 sentinels.
    for shard in 0..2 {
        assert_eq!(metric_value(&metrics, &format!("srv6d_shard_pinned_core{{shard=\"{shard}\"}}")), -1.0);
        assert_eq!(metric_value(&metrics, &format!("srv6d_shard_numa_node{{shard=\"{shard}\"}}")), -1.0);
    }
    daemon.drain();
}
