//! Daemon steady-state allocation regression test: the `pool_zero_alloc`
//! harness extended across the socket ingest boundary.
//!
//! Run with `cargo test -p srv6d --features alloc-counter`. The whole
//! service pass — in-memory socket fill → `FrameBatch` slots →
//! `enqueue_bytes_all` (recycled `BufPool` storage) → rings → workers →
//! flush barrier → TX emit → output-buffer recycle — must cost a small
//! per-**round** constant (barrier reply channels, output vector
//! regrowth), never a per-packet allocation. The in-memory backend
//! recycles frame storage on both link directions, so any steady-state
//! allocation the counter sees belongs to the daemon path itself.

#![cfg(feature = "alloc-counter")]

use netpkt::packet::build_ipv6_udp_packet;
use netpkt::sockio::FrameBatch;
use seg6_core::alloc_counter::{global_allocations, CountingAllocator};
use srv6d::{Config, MemBackend, Srv6Daemon};
use std::net::Ipv6Addr;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

#[test]
fn daemon_service_loop_does_not_allocate_per_packet() {
    const WORKERS: u32 = 2;
    const FRAMES_PER_ROUND: usize = 256;
    const MEASURED_ROUNDS: usize = 8;
    // Per round: one flush barrier (a reply channel per shard), the
    // collected-output vectors' regrowth, and the mem-link bookkeeping.
    // Tiny per packet — one stray per-packet allocation would exceed the
    // whole budget several times over.
    const ROUND_BUDGET: u64 = 512;

    let config = Config::parse(
        "[daemon]\nworkers = 2\nbatch-size = 32\nqueue-depth = 1024\nrx-burst = 64\n\
         [tenant edge]\nlocal = fc00::1\nlisten = [::1]:45000\npeer = 1 [::1]:45100\nroute = ::/0 dev 1",
    )
    .expect("valid config");
    assert_eq!(config.daemon.workers, WORKERS);
    let mem = MemBackend::new(4 * FRAMES_PER_ROUND);
    let mut daemon = Srv6Daemon::start(config, Box::new(mem.clone())).expect("daemon starts");

    // Pre-render the frames outside the measurement.
    let frames: Vec<Vec<u8>> = (0..FRAMES_PER_ROUND as u32)
        .map(|flow| {
            build_ipv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                addr("2001:db8:f::1"),
                (1024 + flow % 40_000) as u16,
                5001,
                &[0u8; 32],
                64,
            )
            .data()
            .to_vec()
        })
        .collect();
    let mut drain_batch = FrameBatch::new(FRAMES_PER_ROUND, 2048);

    // One full round: inject at both queues, service until everything is
    // read, drain the egress link (returning its buffers to the link's
    // free list). Returns the frames read off the sockets.
    let round = |daemon: &mut Srv6Daemon, drain_batch: &mut FrameBatch| -> usize {
        for (i, frame) in frames.iter().enumerate() {
            assert!(mem.inject("edge", (i % WORKERS as usize) as u32, frame), "mem link backpressured");
        }
        let mut read = 0;
        while read < FRAMES_PER_ROUND {
            read += daemon.service().rx_frames;
        }
        let mut drained = 0;
        while drained < FRAMES_PER_ROUND {
            drain_batch.clear();
            let got = mem.drain_egress("edge", 1, drain_batch);
            assert!(got > 0, "egress dried up at {drained}/{FRAMES_PER_ROUND}");
            drained += got;
        }
        read
    };

    // Warmup: mint the arena, size the batch/verdict/output buffers, and
    // seed both mem links' free lists.
    for _ in 0..3 {
        assert_eq!(round(&mut daemon, &mut drain_batch), FRAMES_PER_ROUND);
    }
    let minted_after_warmup = daemon.pool().buf_pool().allocations();

    let before = global_allocations();
    for _ in 0..MEASURED_ROUNDS {
        assert_eq!(round(&mut daemon, &mut drain_batch), FRAMES_PER_ROUND);
    }
    let allocations = global_allocations() - before;

    let totals = daemon.pool().counters().snapshot().tenants[0].totals();
    assert_eq!(totals.processed, (3 + MEASURED_ROUNDS as u64) * FRAMES_PER_ROUND as u64);
    assert_eq!(totals.rejected, 0);
    assert_eq!(
        daemon.pool().buf_pool().allocations(),
        minted_after_warmup,
        "steady-state socket ingest minted fresh packet buffers instead of recycling"
    );
    let budget = MEASURED_ROUNDS as u64 * ROUND_BUDGET;
    assert!(
        allocations <= budget,
        "daemon service loop allocated {allocations} times over {MEASURED_ROUNDS} rounds \
         ({FRAMES_PER_ROUND} frames each); budget {budget} — the socket → ring → worker → \
         TX → recycle path is allocating per packet"
    );

    let report = daemon.drain();
    assert_eq!(report.tenants[0].tx_frames, (3 + MEASURED_ROUNDS as u64) * FRAMES_PER_ROUND as u64);
    assert_eq!(report.drain.counters.in_flight(), 0);
}
