//! Length-prefixed frame capture files — the external packet source for
//! the runtime's ring front-end.
//!
//! The paper's lab replays captures with `trafgen`/`tcpreplay`; this
//! module is the equivalent for the reproduction: a trivial binary format
//! any generator in this crate can write and the worker pool's
//! `enqueue_bytes_all` can replay (see `examples/replay.rs`).
//!
//! ## Format
//!
//! A capture is the 8-byte magic `SRV6CAP1`, then one record per frame:
//!
//! ```text
//! u64 LE  timestamp_ns   (capture clock of the frame)
//! u32 LE  frame length   (bytes, ≤ MAX_FRAME_LEN)
//! [u8]    frame bytes
//! ```
//!
//! Readers hand frames out through a caller-owned reusable buffer
//! ([`CaptureReader::next_frame`]), so replaying a long capture performs
//! one allocation per *capture*, not per frame — the shape the pool's
//! zero-allocation byte-ingestion path wants to be fed with.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic identifying a frame capture.
pub const CAPTURE_MAGIC: &[u8; 8] = b"SRV6CAP1";

/// Upper bound on a single frame's length — anything larger than a jumbo
/// frame is a corrupt record, not a packet.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Writes a frame capture to any `io::Write` sink.
pub struct CaptureWriter<W: Write> {
    sink: W,
    frames: u64,
}

impl CaptureWriter<BufWriter<File>> {
    /// Creates a capture file at `path` (buffered).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        CaptureWriter::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> CaptureWriter<W> {
    /// Starts a capture on `sink` by writing the magic.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(CAPTURE_MAGIC)?;
        Ok(CaptureWriter { sink, frames: 0 })
    }

    /// Appends one frame observed at `timestamp_ns`.
    pub fn write_frame(&mut self, timestamp_ns: u64, frame: &[u8]) -> io::Result<()> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME_LEN"));
        }
        self.sink.write_all(&timestamp_ns.to_le_bytes())?;
        self.sink.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.sink.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads a frame capture from any `io::Read` source.
pub struct CaptureReader<R: Read> {
    source: R,
    frames: u64,
}

impl CaptureReader<BufReader<File>> {
    /// Opens the capture file at `path` (buffered).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        CaptureReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> CaptureReader<R> {
    /// Starts reading from `source`, validating the magic.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if &magic != CAPTURE_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an SRV6CAP1 capture"));
        }
        Ok(CaptureReader { source, frames: 0 })
    }

    /// Reads the next frame into `frame` (cleared and refilled — reuse one
    /// buffer across the whole replay) and returns its capture timestamp;
    /// `None` at a clean end of file. A truncated or oversized record is
    /// an error, never a silent partial frame.
    pub fn next_frame(&mut self, frame: &mut Vec<u8>) -> io::Result<Option<u64>> {
        let mut timestamp = [0u8; 8];
        match self.source.read_exact(&mut timestamp) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let mut len = [0u8; 4];
        self.source.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME_LEN"));
        }
        frame.clear();
        frame.resize(len, 0);
        self.source.read_exact(frame)?;
        self.frames += 1;
        Ok(Some(u64::from_le_bytes(timestamp)))
    }

    /// Frames read so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

/// Convenience: writes `frames` (timestamp, bytes) to a capture file.
pub fn write_capture<'a>(
    path: impl AsRef<Path>,
    frames: impl IntoIterator<Item = (u64, &'a [u8])>,
) -> io::Result<u64> {
    let mut writer = CaptureWriter::create(path)?;
    for (timestamp_ns, frame) in frames {
        writer.write_frame(timestamp_ns, frame)?;
    }
    let written = writer.frames();
    writer.finish()?;
    Ok(written)
}

/// Convenience: reads a whole capture file into owned frames (tests and
/// small captures; replay loops should use [`CaptureReader::next_frame`]
/// with a reused buffer instead).
pub fn read_capture(path: impl AsRef<Path>) -> io::Result<Vec<(u64, Vec<u8>)>> {
    let mut reader = CaptureReader::open(path)?;
    let mut out = Vec::new();
    let mut frame = Vec::new();
    while let Some(timestamp_ns) = reader.next_frame(&mut frame)? {
        out.push((timestamp_ns, frame.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_frames_and_timestamps() {
        let frames: Vec<(u64, Vec<u8>)> =
            (0..100u64).map(|i| (i * 1_000, vec![i as u8; 40 + (i as usize % 60)])).collect();
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        for (ts, frame) in &frames {
            writer.write_frame(*ts, frame).unwrap();
        }
        assert_eq!(writer.frames(), 100);
        let bytes = writer.finish().unwrap();

        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        for (ts, frame) in &frames {
            assert_eq!(reader.next_frame(&mut buf).unwrap(), Some(*ts));
            assert_eq!(&buf, frame);
        }
        assert_eq!(reader.next_frame(&mut buf).unwrap(), None);
        assert_eq!(reader.frames(), 100);
    }

    #[test]
    fn bad_magic_and_truncated_records_error() {
        assert!(CaptureReader::new(&b"NOTACAP1rest"[..]).is_err());
        // A record cut off mid-frame is an error, not a silent None.
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        writer.write_frame(7, &[1, 2, 3, 4]).unwrap();
        let bytes = writer.finish().unwrap();
        let truncated = &bytes[..bytes.len() - 2];
        let mut reader = CaptureReader::new(truncated).unwrap();
        let mut buf = Vec::new();
        assert!(reader.next_frame(&mut buf).is_err());
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        assert!(writer.write_frame(0, &vec![0u8; MAX_FRAME_LEN + 1]).is_err());
        // And a forged oversized length on the read side too.
        let mut bytes = CAPTURE_MAGIC.to_vec();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        assert!(reader.next_frame(&mut Vec::new()).is_err());
    }

    #[test]
    fn file_helpers_roundtrip() {
        let path = std::env::temp_dir().join("srv6cap_test_roundtrip.cap");
        let frames: Vec<(u64, Vec<u8>)> = (0..10u64).map(|i| (i, vec![0xab; 64])).collect();
        let borrowed: Vec<(u64, &[u8])> = frames.iter().map(|(t, f)| (*t, f.as_slice())).collect();
        assert_eq!(write_capture(&path, borrowed).unwrap(), 10);
        assert_eq!(read_capture(&path).unwrap(), frames);
        let _ = std::fs::remove_file(&path);
    }
}
