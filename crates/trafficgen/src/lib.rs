//! # trafficgen — workload generators for the SRv6 eBPF experiments
//!
//! The paper drives its evaluation with standard Linux tools: `trafgen`
//! (SRv6 UDP streams, §3.2), `pktgen` (plain IPv6 streams, §4.1), `iperf3`
//! (constant-rate UDP flows, §4.2) and `nttcp` (bulk TCP goodput, §4.2).
//! This crate provides their equivalents for the `simnet` simulator:
//!
//! * [`udp`] — packet-batch builders and a constant-rate UDP source;
//! * [`tcp`] — a compact Reno-style bulk sender/receiver pair whose
//!   behaviour under packet reordering reproduces the hybrid-access TCP
//!   results;
//! * [`capture`] — a length-prefixed frame capture format
//!   (`tcpreplay`-style), written by the generators and replayed into the
//!   worker pool's ring front-end (`examples/replay.rs`);
//! * [`pace`] — wall-clock pacing of replays by capture inter-frame
//!   timestamps (with a `tcpreplay --topspeed`-style escape hatch).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod pace;
pub mod tcp;
pub mod udp;

pub use capture::{read_capture, write_capture, CaptureReader, CaptureWriter, CAPTURE_MAGIC};
pub use pace::Pacer;
pub use tcp::{TcpBulkReceiver, TcpBulkSender, TcpReceiverStats, TcpSenderStats, DEFAULT_MSS};
pub use udp::{pktgen_ipv6_udp, schedule_burst, trafgen_srv6_udp, UdpFlowSource};
