//! Replay pacing: honouring a capture's inter-frame timestamps.
//!
//! `tcpreplay` replays a pcap at its recorded timing unless told
//! `--topspeed`; a replay that ignores timestamps models a different
//! arrival process than the one captured (bursts flatten queues, gaps
//! disappear). [`Pacer`] reproduces that behaviour for the capture format
//! in [`crate::capture`]: feed it each frame's capture timestamp and it
//! sleeps until the frame's wall-clock due time, keeping the replay's
//! arrival process aligned with the recording. The escape hatch
//! ([`Pacer::as_fast_as_possible`]) replays back-to-back for throughput
//! runs.

use std::time::{Duration, Instant};

/// Schedules replay frames against the wall clock by their capture
/// timestamps. The first paced frame anchors the two clocks; every later
/// frame is due at `anchor + (timestamp - first_timestamp)`. A replay
/// that falls behind (the sink is slower than the capture clock) never
/// sleeps and never tries to catch up by bursting faster than the sink
/// drains.
#[derive(Debug)]
pub struct Pacer {
    mode: Mode,
}

#[derive(Debug)]
enum Mode {
    /// Honour inter-frame gaps; anchor set on the first frame.
    Timestamps { anchor: Option<(Instant, u64)> },
    /// Replay back-to-back.
    Topspeed,
}

impl Pacer {
    /// A pacer honouring capture inter-frame timestamps.
    pub fn by_timestamps() -> Self {
        Pacer { mode: Mode::Timestamps { anchor: None } }
    }

    /// The `--as-fast-as-possible` escape hatch: never sleeps.
    pub fn as_fast_as_possible() -> Self {
        Pacer { mode: Mode::Topspeed }
    }

    /// Whether this pacer honours timestamps (false for topspeed).
    pub fn is_paced(&self) -> bool {
        matches!(self.mode, Mode::Timestamps { .. })
    }

    /// Blocks until the frame stamped `timestamp_ns` is due, then returns
    /// how far behind schedule the replay is (zero when on time — the
    /// lag is what a replay report surfaces as "couldn't keep up").
    pub fn pace(&mut self, timestamp_ns: u64) -> Duration {
        match &mut self.mode {
            Mode::Topspeed => Duration::ZERO,
            Mode::Timestamps { anchor } => {
                let (start, first_ns) = *anchor.get_or_insert_with(|| (Instant::now(), timestamp_ns));
                let due = Duration::from_nanos(timestamp_ns.saturating_sub(first_ns));
                let elapsed = start.elapsed();
                if elapsed < due {
                    std::thread::sleep(due - elapsed);
                    Duration::ZERO
                } else {
                    elapsed - due
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_stretch_the_replay_to_the_capture_clock() {
        let mut pacer = Pacer::by_timestamps();
        assert!(pacer.is_paced());
        let start = Instant::now();
        // 5 frames, 4 ms apart on the capture clock — the replay must take
        // at least the 16 ms the capture spans.
        for i in 0..5u64 {
            pacer.pace(i * 4_000_000);
        }
        assert!(start.elapsed() >= Duration::from_millis(16), "paced replay ran faster than the capture");
    }

    #[test]
    fn topspeed_never_sleeps() {
        let mut pacer = Pacer::as_fast_as_possible();
        assert!(!pacer.is_paced());
        let start = Instant::now();
        for i in 0..1000u64 {
            assert_eq!(pacer.pace(i * 1_000_000_000), Duration::ZERO);
        }
        assert!(start.elapsed() < Duration::from_millis(100), "topspeed replay slept");
    }

    #[test]
    fn late_frames_report_lag_instead_of_sleeping() {
        let mut pacer = Pacer::by_timestamps();
        pacer.pace(0);
        std::thread::sleep(Duration::from_millis(5));
        // The next frame was due ~1 µs after the first — we are ~5 ms late
        // and must be told so without sleeping.
        let lag = pacer.pace(1_000);
        assert!(lag >= Duration::from_millis(4), "lag {lag:?} not reported");
    }

    #[test]
    fn first_frame_timestamp_anchors_relative_time() {
        // A capture whose clock starts at a huge offset must not sleep for
        // that offset — only inter-frame gaps matter.
        let mut pacer = Pacer::by_timestamps();
        let start = Instant::now();
        pacer.pace(u64::MAX / 2);
        pacer.pace(u64::MAX / 2 + 1_000);
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
