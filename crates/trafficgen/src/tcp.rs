//! A compact Reno-style TCP model (the `nttcp` role in §4.2).
//!
//! The hybrid-access experiment only depends on a few TCP behaviours:
//! cumulative ACKs, duplicate ACKs on out-of-order arrivals, fast
//! retransmit after three duplicates, slow start / congestion avoidance and
//! a retransmission timeout. That is exactly what this module implements —
//! enough for per-packet load balancing over two links with very different
//! delays to collapse the goodput, and for delay compensation to restore
//! it, as the paper reports (3.8 Mbps → ≈ 68 Mbps).
//!
//! Connections are modelled as already established (no handshake) and the
//! receive window is assumed large; both simplifications are documented in
//! DESIGN.md and do not affect the reordering phenomenon under study.

use netpkt::ipv6::proto;
use netpkt::tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
use netpkt::{Ipv6Header, PacketBuf, ParsedPacket};
use parking_lot::Mutex;
use simnet::{AppApi, Application};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Default maximum segment size (payload bytes per segment).
pub const DEFAULT_MSS: usize = 1400;
/// Initial congestion window, in segments.
pub const INITIAL_WINDOW_SEGMENTS: u64 = 10;
/// Minimum retransmission timeout.
pub const MIN_RTO_NS: u64 = 200_000_000;
/// Maximum retransmission timeout.
pub const MAX_RTO_NS: u64 = 10_000_000_000;

#[allow(clippy::too_many_arguments)]
fn build_tcp_packet(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    src_port: u16,
    dst_port: u16,
    seq: u64,
    ack: u64,
    flags: TcpFlags,
    payload_len: usize,
) -> PacketBuf {
    let header = TcpHeader::new(src_port, dst_port, seq as u32, ack as u32, flags, u16::MAX);
    let mut segment = Vec::with_capacity(TCP_HEADER_LEN + payload_len);
    segment.extend_from_slice(&header.to_bytes());
    segment.extend(std::iter::repeat_n(0u8, payload_len));
    let ip = Ipv6Header::new(src, dst, proto::TCP, segment.len() as u16, 64);
    let mut pkt = PacketBuf::with_headroom(128);
    pkt.append(&segment);
    pkt.push_header(&ip.to_bytes());
    pkt
}

/// Extracts the TCP header and payload length from a (possibly delivered)
/// packet. Returns `None` for anything that is not TCP.
fn parse_tcp(packet: &PacketBuf) -> Option<(Ipv6Header, TcpHeader, usize)> {
    let parsed = ParsedPacket::parse(packet.data()).ok()?;
    if parsed.transport_proto != proto::TCP {
        return None;
    }
    let tcp = TcpHeader::parse(&packet.data()[parsed.transport_offset..]).ok()?;
    let payload_len = packet.len().saturating_sub(parsed.transport_offset + TCP_HEADER_LEN);
    let outer = parsed.inner.unwrap_or(parsed.outer);
    Some((outer, tcp, payload_len))
}

/// Statistics exposed by a [`TcpBulkSender`].
#[derive(Debug, Default, Clone)]
pub struct TcpSenderStats {
    /// Bytes acknowledged by the receiver.
    pub acked_bytes: u64,
    /// Segments retransmitted (any reason).
    pub retransmissions: u64,
    /// Fast retransmits triggered by three duplicate ACKs.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Time the first segment was sent.
    pub start_ns: u64,
    /// Time the last new byte was acknowledged.
    pub end_ns: u64,
    /// Whether the transfer completed.
    pub finished: bool,
    /// Smoothed RTT estimate at the end of the run, in nanoseconds.
    pub srtt_ns: u64,
}

impl TcpSenderStats {
    /// Goodput of the transfer in bits per second (acknowledged bytes over
    /// the transfer duration).
    pub fn goodput_bps(&self) -> f64 {
        let span = self.end_ns.saturating_sub(self.start_ns);
        if span == 0 {
            return 0.0;
        }
        self.acked_bytes as f64 * 8.0 / (span as f64 / 1e9)
    }
}

/// A bulk TCP sender (the `nttcp` client).
pub struct TcpBulkSender {
    src: Ipv6Addr,
    dst: Ipv6Addr,
    src_port: u16,
    dst_port: u16,
    mss: usize,
    total_bytes: u64,
    deadline_ns: u64,

    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    dupack_threshold: u32,
    dup_ack_since_ns: Option<u64>,
    in_recovery: bool,
    recover: u64,

    srtt_ns: f64,
    rttvar_ns: f64,
    min_rtt_ns: f64,
    rto_ns: u64,
    rtt_probe: Option<(u64, u64)>,
    rto_generation: u64,

    stats: Arc<Mutex<TcpSenderStats>>,
}

impl TcpBulkSender {
    /// Creates a sender transferring `total_bytes` from `src` to
    /// `dst:dst_port`, plus a shared handle to its statistics. The transfer
    /// stops reporting after `deadline_ns` even if unfinished.
    pub fn new(
        src: Ipv6Addr,
        dst: Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        total_bytes: u64,
        deadline_ns: u64,
    ) -> (Self, Arc<Mutex<TcpSenderStats>>) {
        let stats = Arc::new(Mutex::new(TcpSenderStats::default()));
        let sender = TcpBulkSender {
            src,
            dst,
            src_port,
            dst_port,
            mss: DEFAULT_MSS,
            total_bytes,
            deadline_ns,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (INITIAL_WINDOW_SEGMENTS * DEFAULT_MSS as u64) as f64,
            ssthresh: f64::MAX / 4.0,
            dup_acks: 0,
            dupack_threshold: 3,
            dup_ack_since_ns: None,
            in_recovery: false,
            recover: 0,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            min_rtt_ns: f64::MAX,
            rto_ns: 1_000_000_000,
            rtt_probe: None,
            rto_generation: 0,
            stats: Arc::clone(&stats),
        };
        (sender, stats)
    }

    /// Sets the number of duplicate ACKs that triggers a fast retransmit.
    ///
    /// Plain Reno uses 3. Fast retransmit is additionally gated by the
    /// RACK-style time window of [`Self::reordering_window_ns`], so raising
    /// this is rarely necessary.
    pub fn set_dupack_threshold(&mut self, threshold: u32) {
        self.dupack_threshold = threshold.max(1);
    }

    /// RACK-style reordering tolerance (RFC 8985): duplicate ACKs only
    /// trigger a fast retransmit once the gap has persisted for a quarter
    /// of the minimum RTT (queueing-free, as RACK specifies). Linux uses
    /// the same window, which is what lets a real sender ride out the
    /// small residual reordering left after delay compensation in §4.2
    /// while still collapsing under the uncompensated multi-millisecond
    /// path skew.
    fn reordering_window_ns(&self) -> u64 {
        if self.min_rtt_ns < f64::MAX {
            ((self.min_rtt_ns / 4.0) as u64).clamp(1_000_000, 50_000_000)
        } else {
            0
        }
    }

    fn mss_u64(&self) -> u64 {
        self.mss as u64
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_segment(&mut self, api: &mut AppApi<'_>, seq: u64) {
        let remaining = self.total_bytes.saturating_sub(seq);
        let len = remaining.min(self.mss_u64()) as usize;
        if len == 0 {
            return;
        }
        let pkt = build_tcp_packet(
            self.src,
            self.dst,
            self.src_port,
            self.dst_port,
            seq,
            0,
            TcpFlags::default(),
            len,
        );
        api.send(pkt);
        // Karn's algorithm: only time segments that are not retransmissions,
        // otherwise an ACK for the original transmission inflates the sample.
        if self.rtt_probe.is_none() && seq == self.snd_nxt {
            self.rtt_probe = Some((seq + len as u64, api.now_ns));
        }
    }

    fn send_window(&mut self, api: &mut AppApi<'_>) {
        let limit = self.snd_una + self.cwnd as u64;
        while self.snd_nxt < limit && self.snd_nxt < self.total_bytes {
            let seq = self.snd_nxt;
            let remaining = self.total_bytes - seq;
            let len = remaining.min(self.mss_u64());
            self.send_segment(api, seq);
            self.snd_nxt = seq + len;
        }
    }

    fn arm_rto(&mut self, api: &mut AppApi<'_>) {
        self.rto_generation += 1;
        api.schedule_timer(self.rto_ns, self.rto_generation);
    }

    fn update_rtt(&mut self, sample_ns: u64) {
        let sample = sample_ns as f64;
        if self.srtt_ns == 0.0 {
            self.srtt_ns = sample;
            self.rttvar_ns = sample / 2.0;
        } else {
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (self.srtt_ns - sample).abs();
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * sample;
        }
        self.min_rtt_ns = self.min_rtt_ns.min(sample);
        let rto = (self.srtt_ns + 4.0 * self.rttvar_ns) as u64;
        self.rto_ns = rto.clamp(MIN_RTO_NS, MAX_RTO_NS);
        // HyStart-like delay-based slow-start exit: once queueing delay
        // builds up noticeably beyond the minimum RTT, stop doubling. This
        // mirrors what Linux's slow-start heuristics achieve and avoids the
        // pathological multi-hundred-segment overshoot a plain Reno model
        // would exhibit on deep-buffered links.
        if self.cwnd < self.ssthresh {
            let threshold = self.min_rtt_ns + (self.min_rtt_ns / 4.0).max(4_000_000.0);
            if sample > threshold {
                self.ssthresh = self.cwnd;
            }
        }
    }

    fn on_ack(&mut self, api: &mut AppApi<'_>, ack: u64, now_ns: u64) {
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            if let Some((probe_seq, sent_ns)) = self.rtt_probe {
                if ack >= probe_seq {
                    self.update_rtt(now_ns - sent_ns);
                    self.rtt_probe = None;
                }
            }
            self.dup_acks = 0;
            self.dup_ack_since_ns = None;
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // Partial ACK: retransmit the next missing segment.
                    self.send_segment(api, self.snd_una);
                    self.stats.lock().retransmissions += 1;
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += newly.min(self.mss_u64()) as f64;
            } else {
                self.cwnd += (self.mss_u64() * self.mss_u64()) as f64 / self.cwnd;
            }
            {
                let mut stats = self.stats.lock();
                stats.acked_bytes = self.snd_una;
                stats.end_ns = now_ns;
                stats.srtt_ns = self.srtt_ns as u64;
                if self.snd_una >= self.total_bytes {
                    stats.finished = true;
                }
            }
            if self.snd_una >= self.total_bytes {
                return;
            }
            self.arm_rto(api);
            self.send_window(api);
        } else if ack == self.snd_una && self.flight() > 0 {
            self.dup_acks += 1;
            if self.dup_ack_since_ns.is_none() {
                self.dup_ack_since_ns = Some(now_ns);
            }
            let gap_age_ns = now_ns.saturating_sub(self.dup_ack_since_ns.unwrap_or(now_ns));
            let past_reordering_window = gap_age_ns >= self.reordering_window_ns();
            if self.dup_acks >= self.dupack_threshold && past_reordering_window && !self.in_recovery {
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.mss_u64() as f64);
                self.cwnd = self.ssthresh + 3.0 * self.mss_u64() as f64;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.cwnd += 3.0 * self.mss_u64() as f64;
                self.send_segment(api, self.snd_una);
                let mut stats = self.stats.lock();
                stats.fast_retransmits += 1;
                stats.retransmissions += 1;
            } else if self.in_recovery {
                self.cwnd += self.mss_u64() as f64;
                self.send_window(api);
            }
        }
    }
}

impl Application for TcpBulkSender {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        self.stats.lock().start_ns = api.now_ns;
        self.send_window(api);
        self.arm_rto(api);
    }

    fn on_packet(&mut self, api: &mut AppApi<'_>, packet: &PacketBuf) {
        if api.now_ns > self.deadline_ns {
            return;
        }
        let Some((ip, tcp, _len)) = parse_tcp(packet) else { return };
        if tcp.dst_port != self.src_port || tcp.src_port != self.dst_port || ip.src != self.dst {
            return;
        }
        if !tcp.flags.ack {
            return;
        }
        self.on_ack(api, u64::from(tcp.ack), api.now_ns);
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, timer_id: u64) {
        if timer_id != self.rto_generation || api.now_ns > self.deadline_ns {
            return;
        }
        if self.snd_una >= self.total_bytes {
            return;
        }
        if self.flight() == 0 {
            self.send_window(api);
            self.arm_rto(api);
            return;
        }
        // Retransmission timeout.
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.mss_u64() as f64);
        self.cwnd = self.mss_u64() as f64;
        self.dup_acks = 0;
        self.dup_ack_since_ns = None;
        self.in_recovery = false;
        self.snd_nxt = self.snd_una;
        self.rto_ns = (self.rto_ns * 2).min(MAX_RTO_NS);
        self.rtt_probe = None;
        {
            let mut stats = self.stats.lock();
            stats.timeouts += 1;
            stats.retransmissions += 1;
        }
        self.send_window(api);
        self.arm_rto(api);
    }
}

/// Statistics exposed by a [`TcpBulkReceiver`].
#[derive(Debug, Default, Clone)]
pub struct TcpReceiverStats {
    /// In-order bytes delivered to the application.
    pub delivered_bytes: u64,
    /// Segments that arrived out of order.
    pub out_of_order_segments: u64,
    /// Duplicate ACKs sent.
    pub dup_acks_sent: u64,
    /// Arrival time of the first data byte.
    pub first_data_ns: u64,
    /// Arrival time of the most recent in-order data byte.
    pub last_data_ns: u64,
}

impl TcpReceiverStats {
    /// Application-level goodput in bits per second.
    pub fn goodput_bps(&self) -> f64 {
        let span = self.last_data_ns.saturating_sub(self.first_data_ns);
        if span == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / (span as f64 / 1e9)
    }
}

/// A bulk TCP receiver (the `nttcp` server).
pub struct TcpBulkReceiver {
    addr: Ipv6Addr,
    port: u16,
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>,
    stats: Arc<Mutex<TcpReceiverStats>>,
}

impl TcpBulkReceiver {
    /// Creates a receiver listening on `addr`:`port`, plus a shared handle
    /// to its statistics.
    pub fn new(addr: Ipv6Addr, port: u16) -> (Self, Arc<Mutex<TcpReceiverStats>>) {
        let stats = Arc::new(Mutex::new(TcpReceiverStats::default()));
        (TcpBulkReceiver { addr, port, rcv_nxt: 0, ooo: BTreeMap::new(), stats: Arc::clone(&stats) }, stats)
    }
}

impl Application for TcpBulkReceiver {
    fn on_start(&mut self, _api: &mut AppApi<'_>) {}

    fn on_packet(&mut self, api: &mut AppApi<'_>, packet: &PacketBuf) {
        let Some((ip, tcp, payload_len)) = parse_tcp(packet) else { return };
        if tcp.dst_port != self.port || payload_len == 0 {
            return;
        }
        let seq = u64::from(tcp.seq);
        let end = seq + payload_len as u64;
        let mut duplicate = false;
        if seq == self.rcv_nxt {
            self.rcv_nxt = end;
            // Merge any buffered segments that are now contiguous.
            while let Some((&s, &e)) = self.ooo.iter().next() {
                if s > self.rcv_nxt {
                    break;
                }
                self.ooo.remove(&s);
                self.rcv_nxt = self.rcv_nxt.max(e);
            }
        } else if seq > self.rcv_nxt {
            self.ooo.insert(seq, end);
            duplicate = true;
        } else {
            duplicate = true;
        }
        {
            let mut stats = self.stats.lock();
            if stats.first_data_ns == 0 {
                stats.first_data_ns = api.now_ns;
            }
            stats.last_data_ns = api.now_ns;
            stats.delivered_bytes = self.rcv_nxt;
            if duplicate {
                if seq > self.rcv_nxt {
                    stats.out_of_order_segments += 1;
                }
                stats.dup_acks_sent += 1;
            }
        }
        // Cumulative ACK (duplicate or not).
        let ack_pkt =
            build_tcp_packet(self.addr, ip.src, self.port, tcp.src_port, 0, self.rcv_nxt, TcpFlags::ACK, 0);
        api.send(ack_pkt);
    }

    fn on_timer(&mut self, _api: &mut AppApi<'_>, _timer_id: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg6_core::Nexthop;
    use simnet::{LinkConfig, Simulator, NS_PER_SEC};

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn two_nodes(config: LinkConfig, seed: u64) -> (Simulator, usize, usize) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, config);
        sim.node_mut(a).datapath.add_route("fc00::2/128".parse().unwrap(), vec![Nexthop::direct(1)]);
        sim.node_mut(b).datapath.add_route("fc00::1/128".parse().unwrap(), vec![Nexthop::direct(1)]);
        (sim, a, b)
    }

    #[test]
    fn bulk_transfer_completes_on_a_clean_link() {
        let (mut sim, a, b) = two_nodes(LinkConfig::new(100_000_000, 5), 1);
        let total = 2_000_000u64;
        let (sender, sender_stats) =
            TcpBulkSender::new(addr("fc00::1"), addr("fc00::2"), 40_000, 5201, total, 60 * NS_PER_SEC);
        let (receiver, receiver_stats) = TcpBulkReceiver::new(addr("fc00::2"), 5201);
        sim.add_app(a, Box::new(sender));
        sim.add_app(b, Box::new(receiver));
        sim.run_until(60 * NS_PER_SEC);
        let s = sender_stats.lock();
        let r = receiver_stats.lock();
        assert!(s.finished, "transfer did not finish: acked {}", s.acked_bytes);
        assert_eq!(s.acked_bytes, total);
        assert_eq!(r.delivered_bytes, total);
        // Goodput should approach (but not exceed) the 100 Mbps link.
        let goodput = r.goodput_bps();
        assert!(goodput > 20_000_000.0 && goodput < 100_000_000.0, "goodput {goodput}");
    }

    #[test]
    fn loss_triggers_retransmissions_but_the_transfer_still_completes() {
        let (mut sim, a, b) = two_nodes(LinkConfig::new(50_000_000, 5).with_loss(0.01), 2);
        let total = 500_000u64;
        let (sender, sender_stats) =
            TcpBulkSender::new(addr("fc00::1"), addr("fc00::2"), 40_001, 5201, total, 120 * NS_PER_SEC);
        let (receiver, receiver_stats) = TcpBulkReceiver::new(addr("fc00::2"), 5201);
        sim.add_app(a, Box::new(sender));
        sim.add_app(b, Box::new(receiver));
        sim.run_until(120 * NS_PER_SEC);
        let s = sender_stats.lock();
        assert!(s.finished, "acked only {}", s.acked_bytes);
        assert!(s.retransmissions > 0);
        assert_eq!(receiver_stats.lock().delivered_bytes, total);
    }

    #[test]
    fn rtt_estimate_reflects_the_path_delay() {
        let (mut sim, a, b) = two_nodes(LinkConfig::new(100_000_000, 20), 3);
        let (sender, sender_stats) =
            TcpBulkSender::new(addr("fc00::1"), addr("fc00::2"), 40_002, 5201, 400_000, 60 * NS_PER_SEC);
        let (receiver, _) = TcpBulkReceiver::new(addr("fc00::2"), 5201);
        sim.add_app(a, Box::new(sender));
        sim.add_app(b, Box::new(receiver));
        sim.run_until(60 * NS_PER_SEC);
        let srtt = sender_stats.lock().srtt_ns;
        // One-way delay 20 ms each way -> RTT around 40 ms.
        assert!((35_000_000..80_000_000).contains(&srtt), "srtt {srtt}");
    }

    #[test]
    fn goodput_tracks_the_bottleneck_bandwidth() {
        // A slower link should yield a proportionally lower goodput.
        let (mut sim, a, b) = two_nodes(LinkConfig::new(10_000_000, 5), 4);
        let total = 2_000_000u64;
        let (sender, sender_stats) =
            TcpBulkSender::new(addr("fc00::1"), addr("fc00::2"), 40_003, 5201, total, 60 * NS_PER_SEC);
        let (receiver, receiver_stats) = TcpBulkReceiver::new(addr("fc00::2"), 5201);
        sim.add_app(a, Box::new(sender));
        sim.add_app(b, Box::new(receiver));
        sim.run_until(60 * NS_PER_SEC);
        assert!(sender_stats.lock().finished);
        let goodput = receiver_stats.lock().goodput_bps();
        assert!(goodput < 10_000_000.0, "goodput {goodput}");
        assert!(goodput > 3_000_000.0, "goodput {goodput}");
    }

    #[test]
    fn receiver_counts_out_of_order_segments() {
        // Deliver segments directly to the receiver out of order.
        let (receiver, stats) = TcpBulkReceiver::new(addr("fc00::2"), 5201);
        let mut receiver = receiver;
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let mut api = AppApi::detached(0, 0, &mut outbox, &mut timers);
        let seg = |seq: u64| {
            build_tcp_packet(addr("fc00::1"), addr("fc00::2"), 40_000, 5201, seq, 0, TcpFlags::default(), 100)
        };
        receiver.on_packet(&mut api, &seg(100)); // out of order
        receiver.on_packet(&mut api, &seg(0)); // fills the gap
        let s = stats.lock();
        assert_eq!(s.delivered_bytes, 200);
        assert_eq!(s.out_of_order_segments, 1);
        assert_eq!(s.dup_acks_sent, 1);
        // Two ACKs were emitted.
        assert_eq!(outbox.len(), 2);
    }
}
