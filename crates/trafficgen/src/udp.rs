//! UDP workload generators: the `trafgen`, `pktgen` and `iperf3 -u`
//! equivalents used throughout the paper's evaluation.

use netpkt::ipv6::proto;
use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
use netpkt::srh::{SegmentRoutingHeader, SrhTlv};
use netpkt::PacketBuf;
use simnet::{AppApi, Application, Simulator, NS_PER_SEC};
use std::net::Ipv6Addr;

/// Builds the packet stream `trafgen` produces in §3.2: UDP datagrams with
/// a configurable payload and an SRH whose path is given in visiting order.
/// Extra TLVs (e.g. a Delay-Measurement TLV) can be attached.
pub fn trafgen_srv6_udp(
    src: Ipv6Addr,
    path: &[Ipv6Addr],
    payload_len: usize,
    tlvs: Vec<SrhTlv>,
    count: usize,
) -> Vec<PacketBuf> {
    let mut srh = SegmentRoutingHeader::from_path(proto::UDP, path);
    srh.tlvs = tlvs;
    let payload = vec![0u8; payload_len];
    (0..count)
        .map(|i| build_srv6_udp_packet(src, &srh, 1024 + (i % 1024) as u16, 5001, &payload, 64))
        .collect()
}

/// Builds the plain-IPv6 stream `pktgen` produces (no SRH).
pub fn pktgen_ipv6_udp(src: Ipv6Addr, dst: Ipv6Addr, payload_len: usize, count: usize) -> Vec<PacketBuf> {
    let payload = vec![0u8; payload_len];
    (0..count)
        .map(|i| build_ipv6_udp_packet(src, dst, 1024 + (i % 1024) as u16, 5001, &payload, 64))
        .collect()
}

/// An `iperf3 -u`-style constant-rate UDP source, attachable to a simulator
/// node.
pub struct UdpFlowSource {
    /// Source address (should be an address of the node the app runs on).
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// UDP payload size in bytes.
    pub payload_len: usize,
    /// Target sending rate in bits per second (of UDP payload).
    pub rate_bps: u64,
    /// How long to transmit, in nanoseconds.
    pub duration_ns: u64,
    sent: u64,
    elapsed_ns: u64,
}

impl UdpFlowSource {
    /// Creates a source sending `payload_len`-byte datagrams at `rate_bps`
    /// for `duration_ns`.
    pub fn new(
        src: Ipv6Addr,
        dst: Ipv6Addr,
        dst_port: u16,
        payload_len: usize,
        rate_bps: u64,
        duration_ns: u64,
    ) -> Self {
        UdpFlowSource {
            src,
            dst,
            src_port: 49_152,
            dst_port,
            payload_len,
            rate_bps,
            duration_ns,
            sent: 0,
            elapsed_ns: 0,
        }
    }

    /// Number of datagrams sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn interval_ns(&self) -> u64 {
        let bits_per_packet = (self.payload_len as u64) * 8;
        (bits_per_packet * NS_PER_SEC / self.rate_bps.max(1)).max(1)
    }

    fn emit(&mut self, api: &mut AppApi<'_>) {
        let payload = vec![0u8; self.payload_len];
        let pkt = build_ipv6_udp_packet(self.src, self.dst, self.src_port, self.dst_port, &payload, 64);
        api.send(pkt);
        self.sent += 1;
    }
}

impl Application for UdpFlowSource {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        self.emit(api);
        api.schedule_timer(self.interval_ns(), 0);
    }

    fn on_packet(&mut self, _api: &mut AppApi<'_>, _packet: &PacketBuf) {}

    fn on_timer(&mut self, api: &mut AppApi<'_>, _timer_id: u64) {
        self.elapsed_ns += self.interval_ns();
        if self.elapsed_ns >= self.duration_ns {
            return;
        }
        self.emit(api);
        api.schedule_timer(self.interval_ns(), 0);
    }
}

/// Schedules a pre-built packet burst into a simulator at a constant packet
/// rate, as `trafgen` does on S1 (open-loop source).
pub fn schedule_burst(
    sim: &mut Simulator,
    node: usize,
    packets: Vec<PacketBuf>,
    start_ns: u64,
    rate_pps: u64,
) {
    let interval = NS_PER_SEC / rate_pps.max(1);
    for (i, pkt) in packets.into_iter().enumerate() {
        sim.inject_at(start_ns + i as u64 * interval, node, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::srh::TlvKind;
    use netpkt::ParsedPacket;
    use seg6_core::Nexthop;
    use simnet::LinkConfig;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn trafgen_builds_srv6_packets_with_tlvs() {
        let pkts = trafgen_srv6_udp(
            addr("2001:db8::1"),
            &[addr("fc00::1"), addr("fc00::2")],
            64,
            vec![SrhTlv::DelayMeasurement { tx_timestamp_ns: 9 }],
            5,
        );
        assert_eq!(pkts.len(), 5);
        for pkt in &pkts {
            let parsed = ParsedPacket::parse(pkt.data()).unwrap();
            let srh = &parsed.require_srh().unwrap().srh;
            assert_eq!(srh.current_segment(), Some(addr("fc00::1")));
            assert!(srh.find_tlv(TlvKind::DelayMeasurement).is_some());
            assert_eq!(parsed.transport_proto, proto::UDP);
        }
    }

    #[test]
    fn pktgen_builds_plain_packets() {
        let pkts = pktgen_ipv6_udp(addr("2001:db8::1"), addr("2001:db8::2"), 100, 3);
        assert_eq!(pkts.len(), 3);
        assert!(ParsedPacket::parse(pkts[0].data()).unwrap().srh.is_none());
        assert_eq!(pkts[0].len(), 40 + 8 + 100);
    }

    #[test]
    fn udp_flow_source_respects_rate_and_duration() {
        let mut sim = Simulator::new(9);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, LinkConfig::gigabit());
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        // 8 Mbps of 1000-byte payloads for 100 ms = 100 packets.
        let source = UdpFlowSource::new(addr("fc00::1"), addr("fc00::2"), 5001, 1000, 8_000_000, 100_000_000);
        sim.add_app(a, Box::new(source));
        sim.run_until(2 * NS_PER_SEC);
        let sink = sim.node(b).sink(5001);
        assert!((95..=101).contains(&sink.packets), "packets {}", sink.packets);
    }

    #[test]
    fn schedule_burst_paces_injections() {
        let mut sim = Simulator::new(10);
        let a = sim.add_node("A", addr("fc00::1"));
        let b = sim.add_node("B", addr("fc00::2"));
        sim.connect(a, b, LinkConfig::lab_10g());
        sim.node_mut(a).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        let pkts = pktgen_ipv6_udp(addr("fc00::1"), addr("fc00::2"), 64, 50);
        schedule_burst(&mut sim, a, pkts, 0, 1_000_000);
        sim.run_to_completion();
        assert_eq!(sim.node(b).sink(5001).packets, 50);
    }
}
