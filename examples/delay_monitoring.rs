//! Use case §4.1 — passive monitoring of network delays.
//!
//! An ingress router samples traffic towards a client network and
//! encapsulates one packet in N with an SRH carrying a DM (timestamp) TLV;
//! the router at the end of the monitored path runs `End.DM` (an `End.BPF`
//! program) that reports the one-way delay to a user-space daemon through a
//! perf event and decapsulates the probe.
//!
//! ```text
//! cargo run --example delay_monitoring
//! ```

use ebpf_vm::maps::{Map, MapHandle, PerfEventArray};
use netpkt::packet::build_ipv6_udp_packet;
use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6LocalAction};
use simnet::{LinkConfig, Simulator};
use srv6_nf::{end_dm_program, owd_encap_program, DelayCollector, OwdEncapConfig};
use std::collections::HashMap;
use std::net::Ipv6Addr;

fn main() {
    let ingress_addr: Ipv6Addr = "fc00::a".parse().unwrap();
    let dm_sid: Ipv6Addr = "fc00::d1".parse().unwrap();
    let client: Ipv6Addr = "2001:db8:2::9".parse().unwrap();
    let server: Ipv6Addr = "2001:db8:1::1".parse().unwrap();
    let controller: Ipv6Addr = "2001:db8:ffff::c0".parse().unwrap();

    // Topology: server — ingress — egress(DM) — client, with a 20 ms link in
    // the middle so the measured one-way delay is visible.
    let mut sim = Simulator::new(42);
    let s = sim.add_node("server", server);
    let ingress = sim.add_node("ingress", ingress_addr);
    let egress = sim.add_node("egress", dm_sid);
    let c = sim.add_node("client", client);
    sim.connect(s, ingress, LinkConfig::gigabit());
    sim.connect(ingress, egress, LinkConfig::new(1_000_000_000, 20));
    sim.connect(egress, c, LinkConfig::gigabit());

    sim.node_mut(s).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    sim.node_mut(c).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    {
        let dp = &mut sim.node_mut(ingress).datapath;
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(1)]);
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(2)]);
        dp.add_route("fc00::d1/128".parse().unwrap(), vec![Nexthop::direct(2)]);
    }
    {
        let dp = &mut sim.node_mut(egress).datapath;
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(2)]);
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(1)]);
    }

    // Ingress: the sampling encapsulation program on the LWT xmit hook
    // (1:10 probing ratio so this short run produces a few reports).
    let encap = owd_encap_program(OwdEncapConfig { dm_sid, controller, controller_port: 9999, ratio: 10 });
    let encap = {
        let dp = &mut sim.node_mut(ingress).datapath;
        ebpf_vm::program::load(encap, &HashMap::new(), &dp.helpers).expect("encap program verifies")
    };
    sim.node_mut(ingress).datapath.attach_lwt_bpf(
        "2001:db8:2::/48".parse().unwrap(),
        LwtBpfAttachment { hook: LwtHook::Xmit, prog: encap },
    );

    // Egress: End.DM bound to the DM SID, reporting through a perf map.
    let perf = PerfEventArray::new(1024);
    let perf_handle: MapHandle = perf.clone();
    let mut maps = HashMap::new();
    maps.insert(1u32, perf_handle);
    let dm = {
        let dp = &mut sim.node_mut(egress).datapath;
        ebpf_vm::program::load(end_dm_program(1), &maps, &dp.helpers).expect("End.DM verifies")
    };
    sim.node_mut(egress)
        .datapath
        .add_local_sid(netpkt::Ipv6Prefix::host(dm_sid), Seg6LocalAction::EndBpf { prog: dm });

    // The user-space daemon (the paper's bcc/Python collector).
    let mut collector = DelayCollector::new(perf.perf_buffer().expect("perf buffer"));

    // Traffic: 2000 UDP packets from the server to the client.
    for i in 0..2000u64 {
        let pkt = build_ipv6_udp_packet(server, client, 1024, 5001, &[0u8; 256], 64);
        sim.inject_at(i * 100_000, s, pkt);
    }
    sim.run_to_completion();

    let parsed = collector.poll();
    println!("client received {} datagrams", sim.node(c).sink(5001).packets);
    println!("delay reports collected: {parsed}");
    if let (Some(mean), Some(max)) = (collector.mean_owd_ns(), collector.max_owd_ns()) {
        println!("one-way delay: mean = {:.3} ms, max = {:.3} ms", mean as f64 / 1e6, max as f64 / 1e6);
    }
    assert!(parsed > 50, "expected a sampled subset of 2000 packets to be probed");
    assert!(
        collector.mean_owd_ns().unwrap() >= 20_000_000,
        "the 20 ms link must dominate the measured delay"
    );
    println!("delay_monitoring OK: probes were sampled, measured and decapsulated transparently");
}
