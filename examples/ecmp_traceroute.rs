//! Use case §4.3 — querying ECMP next hops with `End.OAMP`.
//!
//! A prober runs an enhanced traceroute towards a destination reached over
//! ECMP paths. Hops that expose the `End.OAMP` SID answer with the full
//! list of equal-cost next hops (via a perf event consumed by the
//! traceroute client); other hops fall back to the legacy ICMP behaviour.
//!
//! ```text
//! cargo run --example ecmp_traceroute
//! ```

use ebpf_vm::maps::{Map, MapHandle, PerfEventArray};
use netpkt::packet::build_srv6_udp_packet;
use netpkt::srh::{SegmentRoutingHeader, SrhTlv};
use seg6_core::{Nexthop, Seg6Datapath, Seg6LocalAction, Skb};
use srv6_nf::{end_oamp_program, oam_helper_registry, EcmpTraceroute, OamEvent};
use std::collections::HashMap;
use std::net::Ipv6Addr;

fn main() {
    let prober: Ipv6Addr = "2001:db8::50".parse().unwrap();
    let target: Ipv6Addr = "2001:db8:9::1".parse().unwrap();

    // Hop 2 of the path is an SRv6 router exposing End.OAMP; it has two
    // equal-cost next hops towards the target.
    let oamp_sid: Ipv6Addr = "fc00::21".parse().unwrap();
    let mut hop2 = Seg6Datapath::new(oamp_sid);
    hop2.helpers = oam_helper_registry();
    hop2.add_route(
        "2001:db8:9::/48".parse().unwrap(),
        vec![Nexthop::via("fe80::31".parse().unwrap(), 1), Nexthop::via("fe80::32".parse().unwrap(), 2)],
    );
    let perf = PerfEventArray::new(64);
    let perf_handle: MapHandle = perf.clone();
    let mut maps = HashMap::new();
    maps.insert(1u32, perf_handle);
    let prog = ebpf_vm::program::load(end_oamp_program(1), &maps, &hop2.helpers).expect("End.OAMP verifies");
    hop2.add_local_sid(netpkt::Ipv6Prefix::host(oamp_sid), Seg6LocalAction::EndBpf { prog });

    // The enhanced traceroute client.
    let mut traceroute = EcmpTraceroute::new();

    // Hop 1 does not support End.OAMP: record the legacy ICMP answer.
    traceroute.record_icmp(1, Some("fc00::11".parse().unwrap()));

    // Hop 2: send an SRv6 probe through the OAMP SID with a reply-to TLV.
    let mut srh = SegmentRoutingHeader::from_path(netpkt::proto::UDP, &[oamp_sid, target]);
    srh.tlvs.push(SrhTlv::OamReplyTo { addr: prober, port: 33434 });
    let probe = build_srv6_udp_packet(prober, &srh, 33434, 33434, &[0u8; 16], 64);
    let mut skb = Skb::new(probe);
    let verdict = hop2.process(&mut skb, 0);
    println!("probe verdict at hop 2: {verdict:?}");

    // The hop's daemon relays the perf event back to the prober; here the
    // client reads it directly.
    let event = perf.perf_buffer().unwrap().poll().expect("End.OAMP must report");
    let report = OamEvent::parse(&event.data).expect("well-formed OAM event");
    traceroute.record_oamp(2, oamp_sid, &report);

    // Hop 3 (the destination's router) falls back to ICMP again.
    traceroute.record_icmp(3, Some("fc00::31".parse().unwrap()));

    println!("\nenhanced traceroute to {target}:");
    print!("{}", traceroute.render());

    let hops = traceroute.hops();
    assert_eq!(hops.len(), 3);
    assert!(hops[1].via_oamp);
    assert_eq!(hops[1].ecmp_nexthops.len(), 2);
    println!(
        "\necmp_traceroute OK: hop 2 reported {} equal-cost next hops via End.OAMP",
        hops[1].ecmp_nexthops.len()
    );
}
