//! Use case §4.2 — hybrid access networks.
//!
//! The aggregation box load-balances traffic towards the client over two
//! access links (xDSL-like and LTE-like) with the per-packet WRR eBPF
//! scheduler; the CPE decapsulates natively. Without delay compensation the
//! different link latencies reorder TCP segments and the goodput collapses;
//! after compensating the latency difference on the fast path, TCP uses the
//! aggregated capacity.
//!
//! ```text
//! cargo run --release --example hybrid_access
//! ```

use ebpf_vm::maps::MapHandle;
use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6LocalAction};
use simnet::{CpuProfile, LinkConfig, Simulator, NS_PER_SEC};
use srv6_nf::{compute_compensation, wrr_encap_program, wrr_maps};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use trafficgen::{TcpBulkReceiver, TcpBulkSender};

struct Topology {
    sim: Simulator,
    s1: usize,
    agg: usize,
    s2: usize,
    links: [usize; 2],
}

fn build(seed: u64) -> Topology {
    let s1_addr: Ipv6Addr = "2001:db8:1::1".parse().unwrap();
    let s2_addr: Ipv6Addr = "2001:db8:2::1".parse().unwrap();
    let agg_addr: Ipv6Addr = "fc00::a".parse().unwrap();
    let cpe_addr: Ipv6Addr = "fc00::b".parse().unwrap();

    let mut sim = Simulator::new(seed);
    let s1 = sim.add_node("S1", s1_addr);
    let agg = sim.add_node("A", agg_addr);
    let cpe = sim.add_node("M", cpe_addr);
    let s2 = sim.add_node("S2", s2_addr);

    // 50 Mbps / 30 ms RTT and 30 Mbps / 5 ms RTT access links (one-way
    // delays are half the RTT), as in the paper.
    let xdsl = LinkConfig::new(50_000_000, 15).with_jitter_ns(2_500_000).with_queue_bytes(128 * 1024);
    let lte = LinkConfig::new(30_000_000, 2).with_jitter_ns(1_000_000).with_queue_bytes(128 * 1024);

    let (_, _, agg_if_s1) = sim.connect(s1, agg, LinkConfig::gigabit());
    let (l0, agg_if_l0, _cpe_if_l0) = sim.connect(agg, cpe, xdsl);
    let (l1, agg_if_l1, cpe_if_l1) = sim.connect(agg, cpe, lte);
    let (_, cpe_if_s2, _) = sim.connect(cpe, s2, LinkConfig::gigabit());
    sim.node_mut(cpe).cpu = CpuProfile::turris_omnia();

    sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    sim.node_mut(s2).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    {
        let dp = &mut sim.node_mut(agg).datapath;
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(agg_if_s1)]);
        dp.add_route("fd00::b1/128".parse().unwrap(), vec![Nexthop::direct(agg_if_l0)]);
        dp.add_route("fd00::b2/128".parse().unwrap(), vec![Nexthop::direct(agg_if_l1)]);
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(agg_if_l0)]);
    }
    {
        let dp = &mut sim.node_mut(cpe).datapath;
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(cpe_if_s2)]);
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(cpe_if_l1)]);
        // The CPE's two decapsulation SIDs — "the SRv6 decapsulation is
        // natively performed by the kernel".
        dp.add_local_sid(
            "fd00::b1".parse().unwrap(),
            Seg6LocalAction::EndDT6 { table: seg6_core::MAIN_TABLE },
        );
        dp.add_local_sid(
            "fd00::b2".parse().unwrap(),
            Seg6LocalAction::EndDT6 { table: seg6_core::MAIN_TABLE },
        );
    }

    // The WRR eBPF scheduler on the aggregation box, weights 5:3 matching
    // the 50/30 Mbps uplink capacities.
    let (state, config) = wrr_maps(5, 3, "fd00::b1".parse().unwrap(), "fd00::b2".parse().unwrap());
    let mut maps: HashMap<u32, MapHandle> = HashMap::new();
    maps.insert(2, state);
    maps.insert(3, config);
    let prog = {
        let dp = &mut sim.node_mut(agg).datapath;
        ebpf_vm::program::load(wrr_encap_program(2, 3), &maps, &dp.helpers).expect("WRR program verifies")
    };
    sim.node_mut(agg)
        .datapath
        .attach_lwt_bpf("2001:db8:2::/48".parse().unwrap(), LwtBpfAttachment { hook: LwtHook::Xmit, prog });

    Topology { sim, s1, agg, s2, links: [l0, l1] }
}

fn run_transfer(compensate: bool) -> f64 {
    let mut topo = build(0xbeef);
    if compensate {
        // The TWD daemon's conclusion for these links: the xDSL path is
        // ~13 ms slower one-way; delay the LTE path by the difference.
        let comp = compute_compensation(30_000_000, 5_000_000);
        topo.sim.set_link_extra_delay(topo.links[comp.delay_path], topo.agg, comp.extra_delay_ns);
        println!(
            "applying {:.1} ms of extra delay on path {}",
            comp.extra_delay_ns as f64 / 1e6,
            comp.delay_path
        );
    }
    let duration = 8 * NS_PER_SEC;
    let (sender, _) = TcpBulkSender::new(
        "2001:db8:1::1".parse().unwrap(),
        "2001:db8:2::1".parse().unwrap(),
        40_000,
        5201,
        u64::MAX / 2,
        duration,
    );
    let (receiver, receiver_stats) = TcpBulkReceiver::new("2001:db8:2::1".parse().unwrap(), 5201);
    topo.sim.add_app(topo.s1, Box::new(sender));
    topo.sim.add_app(topo.s2, Box::new(receiver));
    topo.sim.run_until(duration);
    let stats = receiver_stats.lock();
    stats.delivered_bytes as f64 * 8.0 / (duration as f64 / 1e9) / 1e6
}

fn main() {
    println!("hybrid access: bulk TCP download over 50 Mbps (30 ms RTT) + 30 Mbps (5 ms RTT)");
    let naive = run_transfer(false);
    println!("naive per-packet WRR            : {naive:6.1} Mbps   (paper: 3.8 Mbps)");
    let compensated = run_transfer(true);
    println!("WRR + delay compensation        : {compensated:6.1} Mbps   (paper: ~68 Mbps)");
    assert!(compensated > naive, "compensation must improve goodput");
    println!("hybrid_access OK: delay compensation recovered the aggregated capacity");
}
