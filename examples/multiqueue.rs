//! Walkthrough of the multi-queue batched runtime: RSS flow steering,
//! per-worker datapath instances, true per-CPU map slots and per-CPU perf
//! rings — the architecture a production End.BPF deployment runs on every
//! core, reproduced in user space.
//!
//! ```text
//! cargo run --release --example multiqueue
//! ```

use ebpf_vm::helpers::ids;
use ebpf_vm::insn::{jmp, AccessSize};
use ebpf_vm::maps::PerCpuArrayMap;
use ebpf_vm::program::{load, retcode, ProgramType};
use ebpf_vm::{MapHandle, ProgramBuilder};
use netpkt::ipv6::proto;
use netpkt::packet::build_srv6_udp_packet;
use netpkt::srh::SegmentRoutingHeader;
use seg6_core::{Nexthop, Seg6Datapath, Seg6LocalAction};
use seg6_runtime::{thread_spawn_count, Ingress, PoolConfig, Runtime, RuntimeConfig, WorkerPool};
use simnet::{CpuProfile, LinkConfig, Simulator};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// An End.BPF program that bumps a 64-bit counter in entry 0 of the
/// per-CPU array attached as fd 1, then forwards the packet.
fn counting_program() -> ebpf_vm::Program {
    let mut b = ProgramBuilder::new();
    b.store_imm(AccessSize::Word, 10, -4, 0);
    b.load_map_fd(1, 1);
    b.mov_reg(2, 10);
    b.add_imm(2, -4);
    b.call(ids::MAP_LOOKUP_ELEM);
    b.jmp_imm(jmp::JEQ, 0, 0, "out");
    b.load_mem(AccessSize::Double, 1, 0, 0);
    b.add_imm(1, 1);
    b.store_mem(AccessSize::Double, 0, 1, 0);
    b.label("out");
    b.ret(retcode::BPF_OK as i32);
    b.build_program("count", ProgramType::LwtSeg6Local).expect("static program")
}

fn main() {
    const WORKERS: u32 = 4;
    const PACKETS: u32 = 10_000;
    let sid = addr("fc00::e1");

    // One per-CPU map shared by every worker: each worker sees only its
    // own slot, so the counters need no locks.
    let counters: Arc<PerCpuArrayMap> = PerCpuArrayMap::new(8, 1, WORKERS);
    let shared: MapHandle = counters.clone();

    // Build the runtime: the closure runs once per worker and loads that
    // worker's own program instance (compiled once, at load time).
    let config = RuntimeConfig { workers: WORKERS, batch_size: 32, ..Default::default() };
    let mut runtime = Runtime::new(config, |cpu| {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(1)]);
        let mut maps: HashMap<u32, MapHandle> = HashMap::new();
        maps.insert(1, Arc::clone(&shared));
        let prog = load(counting_program(), &maps, &dp.helpers).expect("verified program");
        dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), Seg6LocalAction::EndBpf { prog });
        dp
    });

    // 10 000 packets over 500 flows: the Toeplitz RSS hash steers each
    // flow to a stable worker shard.
    for i in 0..PACKETS {
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[sid, addr("fc00::99")]);
        let pkt = build_srv6_udp_packet(
            addr(&format!("2001:db8::{:x}", i % 500 + 1)),
            &srh,
            (1024 + i % 500) as u16,
            5001,
            &[0u8; 64],
            64,
        );
        runtime.enqueue(pkt);
    }
    println!("steered {PACKETS} packets over {WORKERS} workers:");
    for worker in runtime.workers() {
        println!("  worker {}: backlog {}", worker.id, worker.backlog());
    }

    // Run every shard on its own OS thread, in batches of 32.
    let report = runtime.run_threaded(0);
    println!(
        "\nprocessed {} packets ({} forwarded, {} dropped), per worker: {:?}",
        report.processed, report.forwarded, report.dropped, report.per_worker
    );

    // Every worker counted in its private per-CPU slot — compare the map
    // contents with the steering statistics.
    println!("\nper-CPU counter slots (map shared by all workers):");
    let key = 0u32.to_ne_bytes();
    for worker in runtime.workers() {
        let slot = counters.lookup_cpu(&key, worker.id).unwrap();
        let count = u64::from_le_bytes(slot.try_into().unwrap());
        println!(
            "  cpu {}: counted {count:5}  (steered {:5}, batches {:3})",
            worker.id, worker.stats.steered, worker.stats.batches
        );
        assert_eq!(count, worker.stats.steered, "per-CPU slots must be disjoint");
    }

    // The persistent worker pool: the same shards as long-lived threads,
    // fed over bounded channels. Spawn once, then only enqueue + flush —
    // the spawn counter proves the steady state costs zero thread spawns.
    println!("\npersistent worker pool: 3 rounds of {PACKETS} packets on {WORKERS} shards");
    let pool_counters: Arc<PerCpuArrayMap> = PerCpuArrayMap::new(8, 1, WORKERS);
    let pool_shared: MapHandle = pool_counters.clone();
    let pool_config =
        PoolConfig { workers: WORKERS, batch_size: 32, queue_depth: 16_384, ..Default::default() };
    let mut pool = WorkerPool::new(pool_config, |cpu| {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::direct(1)]);
        let mut maps: HashMap<u32, MapHandle> = HashMap::new();
        maps.insert(1, Arc::clone(&pool_shared));
        let prog = load(counting_program(), &maps, &dp.helpers).expect("verified program");
        dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), Seg6LocalAction::EndBpf { prog });
        dp
    });
    let spawns_at_steady_state = thread_spawn_count();
    // The live counter block: per-shard relaxed-atomic mirrors, readable
    // from any thread at any time — no flush barrier, no pause.
    let live = pool.counters();
    for round in 1..=3u32 {
        for i in 0..PACKETS {
            let srh = SegmentRoutingHeader::from_path(proto::UDP, &[sid, addr("fc00::99")]);
            let pkt = build_srv6_udp_packet(
                addr(&format!("2001:db8::{:x}", i % 500 + 1)),
                &srh,
                (1024 + i % 500) as u16,
                5001,
                &[0u8; 64],
                64,
            );
            pool.enqueue(pkt);
        }
        // Mid-run, before any barrier: the workers are still chewing on
        // this round, yet the snapshot is immediately readable — the
        // barrier-free metrics a scrape endpoint would serve.
        let snap = live.snapshot();
        println!(
            "  round {round} live (no flush): enqueued {:5}, processed {:5}, in flight {:4}, \
             per shard {:?}",
            snap.enqueued(),
            snap.processed(),
            snap.in_flight(),
            snap.shards.iter().map(|s| s.processed).collect::<Vec<_>>()
        );
        let report = pool.flush();
        println!(
            "  round {round}: processed {} ({} forwarded), per shard {:?}, backpressure drops {}",
            report.run.processed,
            report.run.forwarded,
            report.run.per_worker,
            pool.rejected()
        );
    }
    // At a quiet point the live counters agree exactly with the flushed
    // totals.
    let snap = live.snapshot();
    assert_eq!(snap.processed(), u64::from(3 * PACKETS));
    assert_eq!(snap.in_flight(), 0);
    println!(
        "  after 3 rounds, live totals: enqueued {}, processed {}, forwarded {}, recycled {}",
        snap.enqueued(),
        snap.processed(),
        snap.forwarded(),
        snap.recycled()
    );
    assert_eq!(thread_spawn_count(), spawns_at_steady_state, "steady state spawned a thread");
    println!("  thread spawns during the 3 rounds: 0 (pool threads live across runs)");
    let totals = pool.shutdown();
    println!(
        "  graceful shutdown — lifetime packets per shard: {:?}",
        totals.iter().map(|s| s.processed).collect::<Vec<_>>()
    );

    // The same steering drives the simulator's multi-queue model: a
    // CPU-bound router forwards ~4x more once it has four receive queues.
    // The multi-queue case routes its packets through the persistent pool
    // (`enable_pool_ingestion`), so the simulation exercises exactly the
    // code path benched above.
    println!("\nsimnet: saturating a CPU-bound router for 50 ms of simulated time");
    for queues in [1usize, 4] {
        let mut sim = Simulator::new(7);
        let src = sim.add_node("S", addr("fc00::a1"));
        let router = sim.add_node("R", addr("fc00::11"));
        let sink = sim.add_node("D", addr("fc00::a2"));
        sim.connect(src, router, LinkConfig::lab_10g());
        sim.connect(router, sink, LinkConfig::lab_10g());
        sim.node_mut(src).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
        {
            let dp = &mut sim.node_mut(router).datapath;
            dp.add_route("fc00::a2/128".parse().unwrap(), vec![Nexthop::direct(2)]);
        }
        sim.node_mut(router).cpu = CpuProfile::xeon();
        sim.node_mut(router).set_rx_queues(queues);
        let pooled = queues > 1;
        if pooled {
            // End-to-end ingestion: the router's packets are executed by
            // the persistent worker pool, one shard per receive queue.
            sim.node_mut(router).enable_pool_ingestion();
        }
        for i in 0..20_000u64 {
            let pkt = netpkt::packet::build_ipv6_udp_packet(
                addr("fc00::a1"),
                addr("fc00::a2"),
                1000 + (i % 256) as u16,
                5001,
                &[0u8; 64],
                64,
            );
            sim.inject_at(i * 500, src, pkt); // 2 Mpps offered
        }
        sim.run_to_completion();
        let delivered = sim.node(sink).sink(5001).packets;
        println!(
            "  {queues} rx queue(s){}: delivered {delivered:6} of 20000 (cpu drops {})",
            if pooled { " via persistent pool" } else { "" },
            sim.node(router).cpu_drops
        );
    }
}
