//! Quickstart: install an `End.BPF` SID on a router and forward one SRv6
//! packet through it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ebpf_vm::asm::assemble;
use ebpf_vm::program::{load, Program, ProgramType};
use netpkt::packet::build_srv6_udp_packet;
use netpkt::srh::SegmentRoutingHeader;
use seg6_core::{Nexthop, Seg6Datapath, Seg6LocalAction, Skb};
use std::collections::HashMap;
use std::net::Ipv6Addr;

fn main() {
    // A router R with one SRv6 SID. Its FIB routes everything in fc00::/16
    // towards interface 2.
    let mut router = Seg6Datapath::new("fc00::1".parse().unwrap());
    router.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via("fe80::2".parse().unwrap(), 2)]);

    // The operator writes an SRv6 network function as eBPF text assembly:
    // count packets in the mark field and let them continue (BPF_OK).
    let source = r"
        ; r1 = ctx. Read the mark, increment it, write it back.
        ldxw r2, [r1+24]
        add64 r2, 1
        stxw [r1+24], r2
        mov64 r0, 0          ; BPF_OK
        exit
    ";
    let insns = assemble(source).expect("assembly");
    let program = Program::new("quickstart_counter", ProgramType::LwtSeg6Local, insns);
    let loaded = load(program, &HashMap::new(), &router.helpers).expect("the verifier accepts the program");
    println!(
        "loaded '{}' ({} instructions, verifier processed {})",
        loaded.program.name,
        loaded.program.len(),
        loaded.verifier_stats.insns_processed
    );

    // Bind it to the SID fc00::1:e as an End.BPF action.
    router.add_local_sid("fc00::1:e".parse().unwrap(), Seg6LocalAction::EndBpf { prog: loaded });

    // Build an SRv6 packet whose segment list visits that SID first.
    let path: Vec<Ipv6Addr> = vec!["fc00::1:e".parse().unwrap(), "fc00::2:42".parse().unwrap()];
    let srh = SegmentRoutingHeader::from_path(netpkt::proto::UDP, &path);
    let packet = build_srv6_udp_packet("2001:db8::1".parse().unwrap(), &srh, 1024, 5001, &[0u8; 64], 64);

    let mut skb = Skb::new(packet);
    let verdict = router.process(&mut skb, 0);
    println!("verdict: {verdict:?}");
    println!("packet mark after the program ran: {}", skb.mark);
    println!(
        "datapath stats: received={} forwarded={} seg6local={} bpf={}",
        router.stats.received,
        router.stats.forwarded,
        router.stats.seg6local_invocations,
        router.stats.bpf_invocations
    );
    assert!(verdict.is_forward());
    assert_eq!(skb.mark, 1);
    println!("quickstart OK: the End.BPF program ran and the packet was forwarded to the next segment");
}
