//! Capture replay through the pool's ring front-end: a `tcpreplay`-style
//! external packet source driving `enqueue_bytes_all`.
//!
//! The pipeline: `trafficgen` builds a packet stream and records it into a
//! length-prefixed capture file (`trafficgen::capture`); the replay side
//! streams the file back through one reused frame buffer and feeds the
//! frames — as plain byte slices, the way an AF_PACKET/pcap source would —
//! into the persistent worker pool's recycled-buffer burst path. Two
//! tenants share the pool (alternating replay chunks), so the run also
//! shows per-tenant descriptor stamping and the per-tenant × per-shard
//! live counters.
//!
//! By default the replay is paced by the capture's inter-frame timestamps
//! (`trafficgen::pace::Pacer`), so the rings see the recorded arrival
//! process rather than one giant burst. Pass `--as-fast-as-possible` to
//! replay back-to-back (`tcpreplay --topspeed` style) for throughput runs.
//!
//! ```text
//! cargo run --release --example replay [-- --as-fast-as-possible]
//! ```

use seg6_core::{Nexthop, Seg6Datapath};
use seg6_runtime::{Ingress, PoolConfig, TenantId, TenantSpec, WorkerPool};
use std::net::Ipv6Addr;
use std::time::Instant;
use trafficgen::capture::{CaptureReader, CaptureWriter};
use trafficgen::pace::Pacer;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// Streams one chunk of frames into any [`Ingress`] endpoint — the replay
/// front-end only needs the trait, not a concrete pool or tenant handle.
fn stream_chunk<'a>(
    ingress: &mut impl Ingress,
    now_ns: u64,
    frames: impl IntoIterator<Item = &'a [u8]>,
) -> usize {
    ingress.enqueue_bytes_all(now_ns, frames)
}

/// A datapath routing everything out of `oif` — the two tenants get
/// different interfaces so the replay's per-tenant verdicts are
/// distinguishable in the counters.
fn oif_datapath(oif: u32, cpu: u32) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
    dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(oif)]);
    dp
}

fn main() {
    const FRAMES: usize = 8_192;
    const CHUNK: usize = 256;
    const WORKERS: u32 = 4;

    let topspeed = std::env::args().any(|a| a == "--as-fast-as-possible");
    let mut pacer = if topspeed { Pacer::as_fast_as_possible() } else { Pacer::by_timestamps() };

    // --- Record: trafficgen writes the capture file -----------------------
    let path = std::env::temp_dir().join("srv6_replay_example.cap");
    {
        let packets = trafficgen::pktgen_ipv6_udp(addr("2001:db8::1"), addr("2001:db8:f::1"), 64, FRAMES);
        let mut writer = CaptureWriter::create(&path).expect("create capture file");
        for (i, packet) in packets.iter().enumerate() {
            // 2 Mpps capture clock: one frame every 500 ns.
            writer.write_frame(i as u64 * 500, packet.data()).expect("write frame");
        }
        writer.finish().expect("flush capture");
    }
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("recorded {FRAMES} frames to {} ({file_len} bytes)", path.display());

    // --- Replay: stream the file into the pool's ring front-end ----------
    let config = PoolConfig {
        workers: WORKERS,
        batch_size: 32,
        queue_depth: FRAMES / WORKERS as usize,
        ..Default::default()
    };
    let mut pool = WorkerPool::new(config, |cpu| oif_datapath(1, cpu));
    let tenant_b = pool.add_tenant(TenantSpec::build_with(|cpu| oif_datapath(2, cpu)));
    println!(
        "replaying into a {WORKERS}-shard pool shared by {} tenants (alternating chunks)",
        pool.tenants()
    );

    let mut reader = CaptureReader::open(&path).expect("open capture file");
    // One reusable read buffer plus a reusable chunk of frame buffers: the
    // whole replay allocates per chunk slot once, then streams.
    let mut frame = Vec::new();
    let mut chunk: Vec<Vec<u8>> = vec![Vec::new(); CHUNK];
    let mut filled = 0usize;
    let mut chunk_index = 0u64;
    let mut chunk_clock_ns = 0u64;
    let mut accepted = 0usize;
    let replay = |pool: &mut WorkerPool, chunk: &[Vec<u8>], index: u64, now_ns: u64| -> usize {
        // Even chunks replay as the default tenant, odd chunks as tenant
        // B — one capture serving two routing contexts.
        let tenant = if index.is_multiple_of(2) { TenantId::DEFAULT } else { tenant_b };
        stream_chunk(&mut pool.tenant(tenant), now_ns, chunk.iter().map(Vec::as_slice))
    };
    let replay_start = Instant::now();
    let mut max_lag = std::time::Duration::ZERO;
    while let Some(timestamp_ns) = reader.next_frame(&mut frame).expect("read frame") {
        // Hold each frame until its capture due time (no-op at topspeed),
        // so the rings see the recorded 2 Mpps arrival process.
        max_lag = max_lag.max(pacer.pace(timestamp_ns));
        chunk[filled].clear();
        chunk[filled].extend_from_slice(&frame);
        chunk_clock_ns = timestamp_ns;
        filled += 1;
        if filled == CHUNK {
            accepted += replay(&mut pool, &chunk, chunk_index, chunk_clock_ns);
            filled = 0;
            chunk_index += 1;
        }
    }
    accepted += replay(&mut pool, &chunk[..filled], chunk_index, chunk_clock_ns);
    let mode = if pacer.is_paced() { "paced by capture timestamps" } else { "as fast as possible" };
    println!(
        "replayed {} frames ({mode}) in {:.3} ms, {} accepted by the rings, max lag {:?}",
        reader.frames(),
        replay_start.elapsed().as_secs_f64() * 1e3,
        accepted,
        max_lag
    );

    // --- Observe: live per-tenant rows, then the flush barrier ------------
    let live = pool.counters().snapshot();
    for (tenant, row) in live.tenants.iter().enumerate() {
        let totals = row.totals();
        println!(
            "  tenant {tenant}: enqueued {:5}, processed {:5}, forwarded {:5}, per shard {:?}",
            totals.enqueued,
            totals.processed,
            totals.forwarded,
            row.shards.iter().map(|s| s.processed).collect::<Vec<_>>()
        );
    }
    let report = pool.flush();
    println!(
        "flush: processed {} ({} forwarded), per shard {:?}, backpressure drops {}",
        report.run.processed,
        report.run.forwarded,
        report.run.per_worker,
        pool.rejected()
    );
    assert_eq!(report.run.processed as usize + pool.rejected() as usize, FRAMES);
    // The recycling arena served the replay from a bounded buffer set.
    println!(
        "buffer arena: {} minted, {} recycle hits",
        pool.buf_pool().allocations(),
        pool.buf_pool().recycle_hits()
    );
    pool.shutdown();
    let _ = std::fs::remove_file(&path);
}
