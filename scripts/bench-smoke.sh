#!/usr/bin/env bash
# Smoke-runs the runtime scaling bench with tiny iteration counts and
# snapshots the rows into a BENCH_*.json file at the repo root, so every
# commit leaves a machine-readable perf data point.
#
# Usage:
#   scripts/bench-smoke.sh [output.json]
#
# Environment:
#   SMOKE_MS  measurement window per bench row, in milliseconds (default 30)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE_MS="${SMOKE_MS:-30}"
OUT="${1:-BENCH_runtime_scaling.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# One timestamp for the whole invocation, stamped into every row by the
# criterion shim (BENCH_UTC) and into the snapshot header below.
BENCH_UTC="$(date -u +%FT%TZ)"

# The criterion shim reads three variables: CRITERION_SMOKE_MS shrinks
# every warm-up/measurement window, CRITERION_JSON adds one BENCH_JSON
# line per bench row, and BENCH_UTC tags each row with this run's
# wall-clock time.
CRITERION_SMOKE_MS="$SMOKE_MS" CRITERION_JSON=1 BENCH_UTC="$BENCH_UTC" \
    cargo bench --bench runtime_scaling >"$raw" 2>&1 || {
    cat "$raw" >&2
    echo "bench run failed" >&2
    exit 1
}

grep -v '^BENCH_JSON ' "$raw"

rows="$(grep '^BENCH_JSON ' "$raw" | sed 's/^BENCH_JSON //' | paste -sd, -)"
if [ -z "$rows" ]; then
    echo "no BENCH_JSON rows captured" >&2
    exit 1
fi

# Regression gates: these rows must be present in every snapshot — the
# FIB scaling group (trie vs. linear scan at 10 / 1k / 100k routes), the
# ingestion-transport group (mpsc per-packet send vs. SPSC ring burst
# enqueue across the shard/burst sweep), and the tenancy group (one
# shared multi-tenant pool vs. pool-per-node across the tenant/shard
# sweep, plus the noisy-neighbor pair comparing arrival-order against
# QoS-scheduled admission under an 3:1 flood).
for row in fib_scale/trie_10 fib_scale/trie_100k fib_scale/linear_100k \
    ring_ingest/mpsc_send_1w ring_ingest/ring_burst_1w_b32 \
    ring_ingest/mpsc_send_8w ring_ingest/ring_burst_8w_b256 \
    tenant_scaling/shared_1t_1w tenant_scaling/per_node_1t_1w \
    tenant_scaling/shared_4t_4w tenant_scaling/per_node_4t_4w \
    tenant_scaling/noisy_fifo_1w tenant_scaling/noisy_qos_1w \
    srv6d_io/mem_ingest_1w srv6d_io/udp_loopback_1w \
    srv6d_io/mmsg_loopback_1w srv6d_io/udp_loopback_1w_syscalls \
    srv6d_io/mmsg_loopback_1w_syscalls \
    jit_speedup/srh_walk_interp jit_speedup/srh_walk_microop \
    jit_speedup/srh_walk_fused jit_speedup/srh_walk_native \
    jit_speedup/end_dp_interp jit_speedup/end_dp_native \
    jit_speedup/end_x_dp_interp jit_speedup/end_x_dp_native \
    jit_speedup/end_t_dp_interp jit_speedup/end_t_dp_native \
    jit_speedup/end_scan_dp_interp jit_speedup/end_scan_dp_native; do
    if ! printf '%s' "$rows" | grep -q "\"$row\""; then
        echo "missing bench row $row in snapshot" >&2
        exit 1
    fi
done

# Execution-tier ratio gate: the native tier must beat the interpreter by
# at least MIN_JIT_SPEEDUP× on the compute-heavy VM-level row. On hosts
# without an x86-64 backend the native tier falls back to the fused
# interpreter; set MIN_JIT_SPEEDUP (and the MIN_DP_* knobs below)
# accordingly there.
MIN_JIT_SPEEDUP="${MIN_JIT_SPEEDUP:-3.0}"
row_ns() {
    # One object per line (split on '}'), so a row's name and its
    # ns_per_iter stay together.
    printf '%s' "$rows" | tr '}' '\n' | grep "\"$1\"" | \
        grep -o '"ns_per_iter":[0-9.]*' | head -n1 | cut -d: -f2
}
interp_ns="$(row_ns jit_speedup/srh_walk_interp || true)"
native_ns="$(row_ns jit_speedup/srh_walk_native || true)"
if [ -z "$interp_ns" ] || [ -z "$native_ns" ]; then
    echo "could not extract jit_speedup srh_walk timings" >&2
    exit 1
fi
awk -v i="$interp_ns" -v n="$native_ns" -v min="$MIN_JIT_SPEEDUP" 'BEGIN {
    ratio = i / n
    printf "jit_speedup gate: native %.1fx interpreter (minimum %.1fx)\n", ratio, min
    if (ratio < min) {
        printf "native tier too slow: %.1fx < %.1fx\n", ratio, min > "/dev/stderr"
        exit 1
    }
}'

# Datapath ratio gates: the same comparison end-to-end through the full
# datapath (SID lookup, SRH advance, context build, program run, route
# lookup). The native tier must clear MIN_DP_SPEEDUP× on the row whose
# program does substantial per-packet work: the End.BPF telemetry scan
# (end_scan_dp, ~10x on an idle host). The shipped End/End.X/End.T
# programs are a dozen instructions each — shared per-packet datapath
# work dominates both tiers, their honest ratios sit between ~1.0 and
# ~1.3 and swing by ±0.15 run-to-run on a shared host — so instead of
# gating inside the noise band they carry a MIN_DP_FLOOR non-regression
# floor that still catches a native tier that makes the datapath slower.
MIN_DP_SPEEDUP="${MIN_DP_SPEEDUP:-1.15}"
MIN_DP_FLOOR="${MIN_DP_FLOOR:-0.80}"
dp_gate() {
    name="$1" min="$2" kind="$3"
    i="$(row_ns "jit_speedup/${name}_interp" || true)"
    n="$(row_ns "jit_speedup/${name}_native" || true)"
    if [ -z "$i" ] || [ -z "$n" ]; then
        echo "could not extract jit_speedup $name timings" >&2
        exit 1
    fi
    awk -v i="$i" -v n="$n" -v min="$min" -v name="$name" -v kind="$kind" 'BEGIN {
        ratio = i / n
        printf "jit_speedup gate: %s native %.2fx interpreter (%s %.2fx)\n", name, ratio, kind, min
        if (ratio < min) {
            printf "%s native tier below the %s: %.2fx < %.2fx\n", name, kind, ratio, min > "/dev/stderr"
            exit 1
        }
    }'
}
dp_gate end_scan_dp "$MIN_DP_SPEEDUP" minimum
dp_gate end_dp "$MIN_DP_FLOOR" floor
dp_gate end_x_dp "$MIN_DP_FLOOR" floor
dp_gate end_t_dp "$MIN_DP_FLOOR" floor

# Socket-backend ratio gate: recvmmsg/sendmmsg must move the same
# traffic in at least MIN_MMSG_SYSCALL_SAVING× fewer syscalls than the
# per-datagram std backend. The syscall counts come from the daemon's
# own counters (see srv6d_io in the bench), so unlike wall-clock this
# gate is deterministic even on a loaded 1-core host.
MIN_MMSG_SYSCALL_SAVING="${MIN_MMSG_SYSCALL_SAVING:-1.3}"
udp_syscalls="$(row_ns srv6d_io/udp_loopback_1w_syscalls || true)"
mmsg_syscalls="$(row_ns srv6d_io/mmsg_loopback_1w_syscalls || true)"
if [ -z "$udp_syscalls" ] || [ -z "$mmsg_syscalls" ]; then
    echo "could not extract srv6d_io syscall rates" >&2
    exit 1
fi
awk -v u="$udp_syscalls" -v m="$mmsg_syscalls" -v min="$MIN_MMSG_SYSCALL_SAVING" 'BEGIN {
    ratio = u / m
    printf "srv6d_io gate: mmsg moves a kframe in %.1fx fewer syscalls than std (minimum %.1fx)\n", \
        ratio, min
    if (ratio < min) {
        printf "mmsg backend saves too few syscalls: %.1fx < %.1fx\n", ratio, min > "/dev/stderr"
        exit 1
    }
}'

# Provenance comes from the bench process itself: every row carries the
# parallelism it actually saw; surface the first row's value in the
# header (nproc is only the fallback for old rows without the field).
cores="$(printf '%s' "$rows" | grep -o '"host_parallelism":[0-9]*' | head -n1 | cut -d: -f2)"
[ -n "$cores" ] || cores="$(nproc 2>/dev/null || echo 1)"
cat >"$OUT" <<JSON
{
  "bench": "runtime_scaling",
  "smoke_ms": $SMOKE_MS,
  "host_parallelism": $cores,
  "git_rev": "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)",
  "timestamp": "$BENCH_UTC",
  "rows": [$rows]
}
JSON

echo "wrote $OUT ($(grep -o '"name"' "$OUT" | wc -l) rows)"
