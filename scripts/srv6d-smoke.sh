#!/usr/bin/env bash
# End-to-end smoke test of the srv6d binary on loopback: start the daemon
# with a tiny config and a stats socket, scrape metrics, apply a live
# config reload, then drain it and check the clean exit. Drives the same
# control paths as SIGHUP/SIGTERM but through `srv6d ctl`, so it works
# in environments where the test runner can't signal (and exercises the
# stats socket on the way).
#
# Usage:
#   scripts/srv6d-smoke.sh
#
# Environment:
#   SRV6D       path to a prebuilt srv6d binary (default: builds --release)
#   IO_BACKEND  io-backend config value: std (default), mmsg, or auto
set -euo pipefail

cd "$(dirname "$0")/.."

if [ -z "${SRV6D:-}" ]; then
    cargo build --release -p srv6d --bin srv6d
    SRV6D=target/release/srv6d
fi

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

cfg="$work/srv6d.conf"
sock="$work/stats.sock"
log="$work/srv6d.log"

IO_BACKEND="${IO_BACKEND:-std}"

cat >"$cfg" <<CONF
[daemon]
workers = 1
batch-size = 32
queue-depth = 1024
rx-burst = 64
io-backend = $IO_BACKEND
pin = compact

[tenant edge]
local = fc00::1
listen = [::1]:48800
peer = 1 [::1]:48900
vrf = customers
weight = 4
quota = 50%
budget = 500000
route = ::/0 dev 1
route = @customers 2001:db8::/32 dev 1
sid = fc00::1:0:e end
sid = fc00::1:0:d6 end.dt6 customers
CONF

# --- validate-only path -----------------------------------------------
check_out="$("$SRV6D" check --config "$cfg")"
printf '%s\n' "$check_out" | grep -q '^ok: 1 tenants' || {
    echo "srv6d check rejected a valid config" >&2
    exit 1
}
printf '%s\n' "$check_out" | grep -q "^io-backend: .* (configured $IO_BACKEND)" || {
    echo "srv6d check did not report the resolved io-backend:" >&2
    printf '%s\n' "$check_out" >&2
    exit 1
}
printf '%s\n' "$check_out" | grep -q '^pinning: compact' || {
    echo "srv6d check did not report the pinning plan:" >&2
    printf '%s\n' "$check_out" >&2
    exit 1
}

# --- start, wait for the stats socket to answer -----------------------
"$SRV6D" --config "$cfg" --stats "$sock" >"$log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
    if "$SRV6D" ctl "$sock" ping 2>/dev/null | grep -q '^ok'; then
        break
    fi
    kill -0 "$daemon_pid" 2>/dev/null || {
        echo "srv6d exited during startup:" >&2
        cat "$log" >&2
        exit 1
    }
    sleep 0.1
done
"$SRV6D" ctl "$sock" ping | grep -q '^ok' || {
    echo "stats socket never came up" >&2
    cat "$log" >&2
    exit 1
}

# --- scrape metrics ---------------------------------------------------
metrics="$("$SRV6D" ctl "$sock" metrics)"
printf '%s\n' "$metrics" | grep -q 'srv6d_tenant_active{tenant="edge",slot="0"} 1' || {
    echo "metrics missing the active tenant row:" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
}
printf '%s\n' "$metrics" | grep -q 'srv6d_enqueued_total{tenant="edge",slot="0",shard="0"} 0' || {
    echo "metrics missing the per-shard counter rows" >&2
    exit 1
}
printf '%s\n' "$metrics" | grep -q 'srv6d_rejected_over_budget_total{tenant="edge",slot="0",shard="0"} 0' || {
    echo "metrics missing the QoS over-budget counter rows" >&2
    exit 1
}
printf '%s\n' "$metrics" | grep -q 'srv6d_cost_rate{tenant="edge",slot="0"}' || {
    echo "metrics missing the per-tenant cost-rate gauge" >&2
    exit 1
}
printf '%s\n' "$metrics" | grep -q 'srv6d_budget_headroom{tenant="edge",slot="0"}' || {
    echo "metrics missing the budget-headroom gauge (tenant has a budget)" >&2
    exit 1
}

# --- shard pinning ----------------------------------------------------
# `pin = compact` pins shard 0 to the first allowed core; the gauge is
# -1 only when pinning failed. Pinning is a placement hint, so on a
# single-core host (where the scheduler has no choice anyway) this is a
# logged skip rather than a failure.
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ]; then
    printf '%s\n' "$metrics" | grep -q 'srv6d_shard_pinned_core{shard="0"} [0-9]' || {
        echo "shard 0 not pinned despite pin = compact on a multi-core host:" >&2
        printf '%s\n' "$metrics" | grep 'srv6d_shard_' >&2
        exit 1
    }
else
    printf '%s\n' "$metrics" | grep -q 'srv6d_shard_pinned_core{shard="0"}' || {
        echo "metrics missing the shard placement gauges" >&2
        exit 1
    }
    echo "srv6d smoke: 1-core host, pinning gauge present but value not asserted"
fi

# --- live reload: add a route, keep the tenant ------------------------
cat >>"$cfg" <<'CONF'
route = 2001:db8:b::/48 dev 1
CONF
"$SRV6D" ctl "$sock" reload | grep -q '^ok' || {
    echo "reload command rejected" >&2
    exit 1
}
for _ in $(seq 1 100); do
    grep -q 'reload:' "$log" && break
    sleep 0.1
done
grep -q 'reload:' "$log" || {
    echo "daemon never logged the reload report:" >&2
    cat "$log" >&2
    exit 1
}
grep 'reload:' "$log" | grep -q '1 route-patched' || {
    echo "reload report did not classify the change as a route diff:" >&2
    grep 'reload:' "$log" >&2
    exit 1
}

# --- live reload: weight-only change takes the QoS fast path ----------
# A pure QoS retune (weight 4 → 8) must be applied in place — "retuned",
# not a slot rebuild and not a route patch.
sed -i 's/^weight = 4$/weight = 8/' "$cfg"
"$SRV6D" ctl "$sock" reload | grep -q '^ok' || {
    echo "second reload command rejected" >&2
    exit 1
}
for _ in $(seq 1 100); do
    [ "$(grep -c 'reload:' "$log")" -ge 2 ] && break
    sleep 0.1
done
retune="$(grep 'reload:' "$log" | tail -n 1)"
printf '%s\n' "$retune" | grep -q '1 retuned' || {
    echo "weight-only reload was not classified as a QoS retune:" >&2
    printf '%s\n' "$retune" >&2
    exit 1
}
printf '%s\n' "$retune" | grep -q '0 rebuilt' && printf '%s\n' "$retune" | grep -q '0 route-patched' || {
    echo "weight-only reload fell off the fast path:" >&2
    printf '%s\n' "$retune" >&2
    exit 1
}

# --- graceful drain and clean exit ------------------------------------
"$SRV6D" ctl "$sock" drain | grep -q '^ok' || {
    echo "drain command rejected" >&2
    exit 1
}
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "daemon did not exit after drain:" >&2
    cat "$log" >&2
    exit 1
fi
wait "$daemon_pid"
daemon_pid=""

grep -q 'srv6d: drained' "$log" || {
    echo "daemon exited without the drain report:" >&2
    cat "$log" >&2
    exit 1
}
grep -q 'tenant edge (active)' "$log" || {
    echo "final counters missing the tenant row:" >&2
    cat "$log" >&2
    exit 1
}
[ ! -e "$sock" ] || {
    echo "stats socket left behind after drain" >&2
    exit 1
}

echo "srv6d smoke: start, metrics scrape, live reload (routes + QoS retune), drain — all ok"
