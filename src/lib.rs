//! # srv6-ebpf-lab
//!
//! Umbrella crate of the reproduction of *Leveraging eBPF for programmable
//! network functions with IPv6 Segment Routing* (CoNEXT 2018). It re-exports
//! the workspace crates so examples and downstream users can depend on a
//! single crate:
//!
//! * [`netpkt`] — IPv6 / SRH / UDP / TCP / ICMPv6 wire formats;
//! * [`ebpf_vm`] — the eBPF virtual machine (ISA, verifier, interpreter,
//!   JIT, maps, helpers, perf events);
//! * [`seg6_core`] — the SRv6 data plane with the `End.BPF` action and the
//!   four SRv6 helpers (the paper's contribution);
//! * [`seg6_runtime`] — the multi-queue batched packet runtime (RSS flow
//!   steering, worker shards with per-CPU map slots, batch execution);
//! * [`simnet`] — the discrete-event network simulator standing in for the
//!   paper's physical lab;
//! * [`srv6_nf`] — the use-case network functions (delay monitoring, hybrid
//!   access WRR, ECMP discovery) written as eBPF bytecode;
//! * [`trafficgen`] — workload generators and the Reno TCP model;
//! * [`srv6d`] — the deployable daemon: batched socket I/O feeding the
//!   multi-tenant worker pool, with config reload and graceful drain.
//!
//! See the `examples/` directory for runnable walkthroughs of each use case
//! and the `bench` crate for the harness regenerating every figure of the
//! paper's evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ebpf_vm;
pub use netpkt;
pub use seg6_core;
pub use seg6_runtime;
pub use simnet;
pub use srv6_nf;
pub use srv6d;
pub use trafficgen;
