//! Cross-crate integration tests: eBPF programs written with the assembler
//! or the builders, loaded through the verifier, executed by the seg6
//! datapath inside the simulator.

use ebpf_vm::asm::assemble;
use ebpf_vm::program::{load, Program, ProgramType};
use netpkt::ipv6::proto;
use netpkt::packet::build_srv6_udp_packet;
use netpkt::srh::SegmentRoutingHeader;
use seg6_core::{Nexthop, Seg6LocalAction};
use simnet::{LinkConfig, Simulator};
use std::collections::HashMap;
use std::net::Ipv6Addr;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// An SRv6 packet traverses a three-node chain in the simulator; the middle
/// router executes an End.BPF program that drops packets whose SRH tag is
/// odd and forwards the rest.
#[test]
fn end_bpf_filters_packets_inside_the_simulator() {
    let mut sim = Simulator::new(7);
    let s1 = sim.add_node("S1", addr("fc00::a1"));
    let r = sim.add_node("R", addr("fc00::11"));
    let s2 = sim.add_node("S2", addr("fc00::a2"));
    let (_, _, r_left) = sim.connect(s1, r, LinkConfig::lab_10g());
    let (_, r_right, _) = sim.connect(r, s2, LinkConfig::lab_10g());

    sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    {
        let dp = &mut sim.node_mut(r).datapath;
        dp.add_route("fc00::a2/128".parse().unwrap(), vec![Nexthop::direct(r_right)]);
        dp.add_route("fc00::a1/128".parse().unwrap(), vec![Nexthop::direct(r_left)]);
    }

    // Drop packets whose SRH tag (offset 46 from the start of the packet)
    // is odd; forward the others.
    let source = r"
        ldxdw r6, [r1+0]      ; packet data
        ldxb r2, [r6+47]      ; low-order byte of the SRH tag (network order)
        and64 r2, 1
        jeq r2, 0, keep
        mov64 r0, 2           ; BPF_DROP
        exit
    keep:
        mov64 r0, 0           ; BPF_OK
        exit
    ";
    let insns = assemble(source).unwrap();
    let prog = Program::new("tag_filter", ProgramType::LwtSeg6Local, insns);
    let loaded = {
        let dp = &sim.node_mut(r).datapath;
        load(prog, &HashMap::new(), &dp.helpers).unwrap()
    };
    sim.node_mut(r)
        .datapath
        .add_local_sid("fc00::11/128".parse().unwrap(), Seg6LocalAction::EndBpf { prog: loaded });

    // Send 10 packets, alternating tag parity.
    for i in 0..10u16 {
        let mut srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::11"), addr("fc00::a2")]);
        srh.tag = i;
        let pkt = build_srv6_udp_packet(addr("fc00::a1"), &srh, 1024, 5001, &[0u8; 64], 64);
        sim.inject_at(u64::from(i) * 10_000, s1, pkt);
    }
    sim.run_to_completion();

    // Only the five even-tagged packets arrive.
    assert_eq!(sim.node(s2).sink(5001).packets, 5);
    assert_eq!(sim.node(r).datapath.stats.bpf_invocations, 10);
    assert_eq!(sim.node(r).datapath.stats.dropped_for(seg6_core::DropReason::BpfDrop), 5);
}

/// The same program gives identical results through every execution tier
/// when run over the full datapath.
#[test]
fn all_execution_tiers_agree_on_the_datapath() {
    for tier in ebpf_vm::ExecTier::ALL {
        let mut dp = seg6_core::Seg6Datapath::new(addr("fc00::1"));
        dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
        let prog = srv6_nf::tag_increment_program();
        let loaded = load(prog, &HashMap::new(), &dp.helpers).unwrap();
        loaded.set_exec_tier(tier);
        dp.add_local_sid("fc00::e1/128".parse().unwrap(), Seg6LocalAction::EndBpf { prog: loaded });

        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::e1"), addr("fc00::99")]);
        let pkt = build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1, 2, &[0u8; 32], 64);
        let mut skb = seg6_core::Skb::new(pkt);
        assert!(dp.process(&mut skb, 0).is_forward());
        let parsed = netpkt::ParsedPacket::parse(skb.packet.data()).unwrap();
        assert_eq!(parsed.require_srh().unwrap().srh.tag, 1, "tier = {tier:?}");
    }
}

/// Helper gating is enforced end to end: an lwt_xmit program cannot call a
/// seg6local-only helper, and vice versa.
#[test]
fn helper_gating_is_enforced_at_load_time() {
    let dp = seg6_core::Seg6Datapath::new(addr("fc00::1"));
    // push_encap (73) from a seg6local program: rejected.
    let insns = assemble("mov64 r2, 0\nmov64 r3, 0\nmov64 r4, 0\ncall 73\nexit").unwrap();
    let prog = Program::new("bad1", ProgramType::LwtSeg6Local, insns);
    assert!(load(prog, &HashMap::new(), &dp.helpers).is_err());
    // seg6_store_bytes (74) from an lwt_xmit program: rejected.
    let insns = assemble("mov64 r2, 6\nmov64 r3, 0\nmov64 r4, 2\ncall 74\nexit").unwrap();
    let prog = Program::new("bad2", ProgramType::LwtXmit, insns);
    assert!(load(prog, &HashMap::new(), &dp.helpers).is_err());
}
