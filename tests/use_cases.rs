//! End-to-end integration tests of the three use cases over the simulator,
//! spanning every crate of the workspace.

use ebpf_vm::maps::{Map, MapHandle, PerfEventArray};
use netpkt::packet::build_ipv6_udp_packet;
use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6LocalAction};
use simnet::{LinkConfig, Simulator, NS_PER_SEC};
use srv6_nf::{end_dm_program, owd_encap_program, DelayCollector, OwdEncapConfig};
use std::collections::HashMap;
use std::net::Ipv6Addr;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// §4.1 end to end: the ingress samples and timestamps traffic, the egress
/// End.DM reports the one-way delay and transparently decapsulates, and the
/// client still receives every datagram.
#[test]
fn delay_monitoring_use_case_end_to_end() {
    let mut sim = Simulator::new(99);
    let server = sim.add_node("server", addr("2001:db8:1::1"));
    let ingress = sim.add_node("ingress", addr("fc00::a"));
    let egress = sim.add_node("egress", addr("fc00::d1"));
    let client = sim.add_node("client", addr("2001:db8:2::9"));
    sim.connect(server, ingress, LinkConfig::gigabit());
    sim.connect(ingress, egress, LinkConfig::new(1_000_000_000, 10));
    sim.connect(egress, client, LinkConfig::gigabit());

    sim.node_mut(server).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    sim.node_mut(client).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    {
        let dp = &mut sim.node_mut(ingress).datapath;
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(2)]);
        dp.add_route("fc00::d1/128".parse().unwrap(), vec![Nexthop::direct(2)]);
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(1)]);
    }
    {
        let dp = &mut sim.node_mut(egress).datapath;
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(2)]);
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(1)]);
    }

    // Ingress program: sample 1 packet in 5.
    let encap = owd_encap_program(OwdEncapConfig {
        dm_sid: addr("fc00::d1"),
        controller: addr("2001:db8:ffff::c0"),
        controller_port: 9999,
        ratio: 5,
    });
    let encap = {
        let dp = &sim.node_mut(ingress).datapath;
        ebpf_vm::program::load(encap, &HashMap::new(), &dp.helpers).unwrap()
    };
    sim.node_mut(ingress).datapath.attach_lwt_bpf(
        "2001:db8:2::/48".parse().unwrap(),
        LwtBpfAttachment { hook: LwtHook::Xmit, prog: encap },
    );

    // Egress End.DM.
    let perf = PerfEventArray::new(1024);
    let perf_handle: MapHandle = perf.clone();
    let mut maps = HashMap::new();
    maps.insert(1u32, perf_handle);
    let dm = {
        let dp = &sim.node_mut(egress).datapath;
        ebpf_vm::program::load(end_dm_program(1), &maps, &dp.helpers).unwrap()
    };
    sim.node_mut(egress)
        .datapath
        .add_local_sid("fc00::d1/128".parse().unwrap(), Seg6LocalAction::EndBpf { prog: dm });

    let total = 500u64;
    for i in 0..total {
        let pkt =
            build_ipv6_udp_packet(addr("2001:db8:1::1"), addr("2001:db8:2::9"), 1024, 5001, &[0u8; 128], 64);
        sim.inject_at(i * 50_000, server, pkt);
    }
    sim.run_until(NS_PER_SEC);

    // Every datagram reaches the client, probes included (they are
    // decapsulated by End.DM).
    assert_eq!(sim.node(client).sink(5001).packets, total);
    let mut collector = DelayCollector::new(perf.perf_buffer().unwrap());
    let reports = collector.poll();
    assert!(reports > 20, "sampling 1:5 over 500 packets must produce reports, got {reports}");
    // The 10 ms link dominates the measured one-way delay.
    let mean = collector.mean_owd_ns().unwrap();
    assert!(mean >= 10_000_000, "mean OWD {mean}");
    assert!(mean < 50_000_000, "mean OWD {mean}");
}

/// §4.3 end to end inside a simulated ECMP topology: the probe traverses the
/// OAMP hop and the report lists both equal-cost next hops.
#[test]
fn ecmp_discovery_use_case_end_to_end() {
    use netpkt::srh::{SegmentRoutingHeader, SrhTlv};

    let mut sim = Simulator::new(5);
    let prober = sim.add_node("prober", addr("2001:db8::50"));
    let hop = sim.add_node("hop", addr("fc00::21"));
    let target = sim.add_node("target", addr("2001:db8:9::1"));
    sim.connect(prober, hop, LinkConfig::gigabit());
    sim.connect(hop, target, LinkConfig::gigabit());

    sim.node_mut(prober).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    {
        let dp = &mut sim.node_mut(hop).datapath;
        dp.helpers = srv6_nf::oam_helper_registry();
        dp.add_route(
            "2001:db8:9::/48".parse().unwrap(),
            vec![Nexthop::direct(2), Nexthop::via(addr("fe80::bac"), 2)],
        );
        dp.add_route("2001:db8::/40".parse().unwrap(), vec![Nexthop::direct(1)]);
    }

    let perf = PerfEventArray::new(64);
    let perf_handle: MapHandle = perf.clone();
    let mut maps = HashMap::new();
    maps.insert(1u32, perf_handle);
    let prog = {
        let dp = &sim.node_mut(hop).datapath;
        ebpf_vm::program::load(srv6_nf::end_oamp_program(1), &maps, &dp.helpers).unwrap()
    };
    sim.node_mut(hop)
        .datapath
        .add_local_sid("fc00::21/128".parse().unwrap(), Seg6LocalAction::EndBpf { prog });

    // The probe: SRv6 packet through the hop's OAMP SID with a reply-to TLV.
    let mut srh =
        SegmentRoutingHeader::from_path(netpkt::proto::UDP, &[addr("fc00::21"), addr("2001:db8:9::1")]);
    srh.tlvs.push(SrhTlv::OamReplyTo { addr: addr("2001:db8::50"), port: 33434 });
    let probe =
        netpkt::packet::build_srv6_udp_packet(addr("2001:db8::50"), &srh, 33434, 33434, &[0u8; 8], 64);
    sim.inject_at(0, prober, probe);
    sim.run_to_completion();

    // The probe reached the target and the report was emitted.
    assert_eq!(sim.node(target).sink(33434).packets, 1);
    let event = perf.perf_buffer().unwrap().poll().expect("OAMP report");
    let report = srv6_nf::OamEvent::parse(&event.data).unwrap();
    assert_eq!(report.queried_dst, addr("2001:db8:9::1"));
    assert_eq!(report.nexthops.len(), 2);
}
